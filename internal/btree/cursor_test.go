package btree

import (
	"errors"
	"fmt"
	"testing"
)

// TestScanWithPageHook verifies that the per-page hook fires at least once
// per leaf visited plus the root-to-leaf descent, and that a multi-page scan
// reports more pages than a single-leaf one.
func TestScanWithPageHook(t *testing.T) {
	tr := newMemTree(t, 256) // tiny pages force a multi-level tree
	const n = 200
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := tr.Put(k, []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}

	pages, seen := 0, 0
	err := tr.ScanWith(nil, nil, func() error { pages++; return nil }, func(k, v []byte) (bool, error) {
		seen++
		return true, nil
	})
	if err != nil {
		t.Fatalf("ScanWith: %v", err)
	}
	if seen != n {
		t.Fatalf("visited %d entries, want %d", seen, n)
	}
	// 200 entries on 256-byte pages cannot fit one page: the hook must have
	// fired for the descent plus several leaves.
	if pages < 3 {
		t.Fatalf("page hook fired %d times, want >= 3", pages)
	}

	// A bounded scan touches fewer pages than the full scan.
	small := 0
	err = tr.ScanWith([]byte("key-0000"), []byte("key-0002"), func() error { small++; return nil },
		func(k, v []byte) (bool, error) { return true, nil })
	if err != nil {
		t.Fatalf("ScanWith(bounded): %v", err)
	}
	if small >= pages {
		t.Fatalf("bounded scan touched %d pages, full scan %d; want fewer", small, pages)
	}
}

// TestScanWithHookAborts verifies a hook error aborts the scan and surfaces
// unchanged — the contract budget/cancellation checkpoints rely on.
func TestScanWithHookAborts(t *testing.T) {
	tr := newMemTree(t, 256)
	for i := 0; i < 200; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	sentinel := errors.New("stop right there")
	calls, seen := 0, 0
	err := tr.ScanWith(nil, nil, func() error {
		calls++
		if calls == 3 {
			return sentinel
		}
		return nil
	}, func(k, v []byte) (bool, error) { seen++; return true, nil })
	if !errors.Is(err, sentinel) {
		t.Fatalf("ScanWith returned %v, want the hook's sentinel", err)
	}
	if seen >= 200 {
		t.Fatalf("scan visited all %d entries despite the aborting hook", seen)
	}
	// The tree must remain usable after an aborted scan.
	if _, _, ok, err := tr.SeekFirstWith(nil, nil, nil); err != nil || !ok {
		t.Fatalf("SeekFirstWith after abort: ok=%v err=%v", ok, err)
	}
}
