package btree

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestFaultPlanNoSpace: the space budget tears the crossing write, fails
// later writes with ENOSPC, leaves the plan alive (reads and syncs keep
// working), and recovers once AddSpace frees room.
func TestFaultPlanNoSpace(t *testing.T) {
	plan := &FaultPlan{NoSpaceAfter: 10}
	f, err := FaultFS{Plan: plan}.OpenFile(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if n, err := f.WriteAt([]byte("12345678"), 0); n != 8 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	// 8 used, 2 left: this write is torn at 2 bytes.
	n, err := f.WriteAt([]byte("abcdefgh"), 8)
	if n != 2 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("crossing write: n=%d err=%v, want 2, ErrNoSpace", n, err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ErrNoSpace does not wrap syscall.ENOSPC: %v", err)
	}
	if plan.Killed() {
		t.Fatal("ENOSPC killed the plan; it must stay alive")
	}
	// Budget exhausted: nothing more is granted, but the torn prefix is in
	// the mirror and a sync can still make it durable.
	if n, err := f.WriteAt([]byte("x"), 10); n != 0 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("post-exhaustion write: n=%d err=%v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync on a full disk must still succeed: %v", err)
	}
	got := make([]byte, 10)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("12345678ab")) {
		t.Fatalf("mirror = %q, want torn prefix preserved", got)
	}

	plan.AddSpace(100)
	if n, err := f.WriteAt([]byte("recovered"), 10); n != 9 || err != nil {
		t.Fatalf("write after AddSpace: n=%d err=%v", n, err)
	}
	if used := plan.SpaceUsed(); used != 19 {
		t.Fatalf("SpaceUsed = %d, want 19", used)
	}
}

// TestFaultPlanFailOpSchedule: a FailOp schedule fails chosen operations
// cleanly — no bytes consumed, nothing torn — and distinguishes transient
// from persistent errors by sequence number.
func TestFaultPlanFailOpSchedule(t *testing.T) {
	transient := errors.New("transient EIO")
	plan := &FaultPlan{
		FailOp: func(op int64, kind FaultOp) error {
			if op == 2 && kind == FaultWrite {
				return transient
			}
			return nil
		},
	}
	f, err := FaultFS{Plan: plan}.OpenFile(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if _, err := f.WriteAt([]byte("aaaa"), 0); err != nil {
		t.Fatal(err)
	}
	n, err := f.WriteAt([]byte("bbbb"), 4)
	if n != 0 || !errors.Is(err, transient) {
		t.Fatalf("scheduled op: n=%d err=%v, want clean scheduled failure", n, err)
	}
	// The failed op consumed nothing: the retry succeeds and the mirror has
	// no hole.
	if _, err := f.WriteAt([]byte("bbbb"), 4); err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	got := make([]byte, 8)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("aaaabbbb")) {
		t.Fatalf("mirror = %q after transient failure + retry", got)
	}
	if plan.Ops() != 3 {
		t.Fatalf("Ops = %d, want 3", plan.Ops())
	}
	if plan.Killed() {
		t.Fatal("scheduled failure killed the plan")
	}
}

// TestFaultPlanOpDelay: per-op latency injection actually slows operations.
func TestFaultPlanOpDelay(t *testing.T) {
	plan := &FaultPlan{OpDelay: 20 * time.Millisecond}
	f, err := FaultFS{Plan: plan}.OpenFile(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := f.WriteAt([]byte("x"), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("3 writes with 20ms OpDelay took %v, want >= 50ms", d)
	}
}

// TestVerifyPage covers the scrubber's read path: clean pages verify, an
// on-disk flip is detected as ErrCorrupt, allocated-but-never-flushed pages
// are reported unchecked (healthy), and unallocated IDs are an error.
func TestVerifyPage(t *testing.T) {
	const pageSize = 512
	path := filepath.Join(t.TempDir(), "v.db")
	pg, err := OpenFilePager(path, pageSize, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pg, Options{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%03d", i)), bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Publish(1)
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	n := pg.NumPages()
	if n < 3 {
		t.Fatalf("want a multi-page tree, got %d pages", n)
	}
	for id := uint32(0); id < n; id++ {
		checked, err := pg.VerifyPage(PageID(id))
		if err != nil {
			t.Fatalf("VerifyPage(%d) on a clean tree: %v", id, err)
		}
		if !checked {
			t.Fatalf("VerifyPage(%d): synced page reported unchecked", id)
		}
	}
	if _, err := pg.VerifyPage(PageID(n + 10)); err == nil {
		t.Fatal("VerifyPage on an unallocated page must error")
	}

	// Flip bytes in the middle of page 1 on disk, behind the pager's back.
	raw, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	const diskPage = pageSize + pageTrailerSize
	if _, err := raw.WriteAt([]byte("corruption"), int64(diskPage)+100); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	checked, err := pg.VerifyPage(PageID(1))
	if !checked || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyPage on flipped page: checked=%v err=%v, want ErrCorrupt", checked, err)
	}

	// A freshly allocated page that never reached disk is unchecked, not
	// corrupt.
	id, err := pg.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	checked, err = pg.VerifyPage(id)
	if err != nil {
		t.Fatalf("VerifyPage on unflushed page: %v", err)
	}
	if checked {
		t.Fatal("unflushed page reported as checked")
	}
	tr.Close()
}

// TestVerifyPageReadsStagedWAL: a page whose newest durable copy lives in
// the write-ahead log (staged, pre-checkpoint) verifies against that copy,
// not the stale main-file frame.
func TestVerifyPageReadsStagedWAL(t *testing.T) {
	const pageSize = 512
	dir := t.TempDir()
	wal, err := OpenWAL(filepath.Join(dir, "wal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := OpenFilePagerOpts(filepath.Join(dir, "t.db"), pageSize, PagerOptions{
		CachePages: 4, WAL: wal, WALFileID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Recover(); err != nil {
		t.Fatal(err)
	}
	tr, err := New(pg, Options{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		tr.Close()
		wal.Close()
	}()
	for i := 0; i < 30; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%03d", i)), bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Publish(1)
	// Stage every dirty page into the log without checkpointing into the
	// main file.
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	for id := uint32(0); id < pg.NumPages(); id++ {
		checked, err := pg.VerifyPage(PageID(id))
		if err != nil {
			t.Fatalf("VerifyPage(%d) with staged WAL copy: %v", id, err)
		}
		_ = checked // staged pages are checked; never-written ones may not be
	}
}
