package btree

import (
	"bytes"
	"compress/flate"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"

	"vist/internal/obs"
)

// PageID identifies a fixed-size page within a Pager. Page 0 is always the
// tree's meta page; 0 therefore doubles as the nil page reference.
type PageID uint32

// ErrCorrupt is wrapped by every checksum-mismatch and torn-page error, so
// callers can distinguish detected corruption from ordinary I/O failures
// with errors.Is.
var ErrCorrupt = errors.New("page corrupt")

// Pager is the raw page I/O abstraction under a B+Tree. Implementations must
// return pages of exactly PageSize bytes. Allocation is grow-only at this
// layer; reuse of freed pages is handled by the tree's freelist.
type Pager interface {
	// PageSize reports the fixed page size in bytes.
	PageSize() int
	// NumPages reports how many pages have been allocated so far.
	NumPages() uint32
	// Allocate appends a new zeroed page and returns its ID.
	Allocate() (PageID, error)
	// Read fills buf (len == PageSize) with the page's content.
	Read(id PageID, buf []byte) error
	// Write stores data (len == PageSize) as the page's content.
	Write(id PageID, data []byte) error
	// Flush pushes buffered writes down one layer (to the file, or to the
	// write-ahead log when one is attached) without forcing stable storage.
	Flush() error
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases resources, flushing first.
	Close() error
}

// MemPager keeps all pages in memory. It is used by tests and by benchmarks
// that want to measure algorithmic cost without disk I/O. All methods are
// safe for concurrent use: an RWMutex lets parallel readers copy pages while
// Allocate/Write serialize against them, matching the concurrency contract
// the rest of the system documents (Index and BTree are safe for concurrent
// use regardless of the backing pager).
type MemPager struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
}

// NewMemPager returns an in-memory pager with the given page size.
func NewMemPager(pageSize int) *MemPager {
	return &MemPager{pageSize: pageSize}
}

// PageSize implements Pager.
func (m *MemPager) PageSize() int { return m.pageSize }

// NumPages implements Pager.
func (m *MemPager) NumPages() uint32 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return uint32(len(m.pages))
}

// Allocate implements Pager.
func (m *MemPager) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, make([]byte, m.pageSize))
	return PageID(len(m.pages) - 1), nil
}

// Read implements Pager.
func (m *MemPager) Read(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("btree: read of unallocated page %d", id)
	}
	copy(buf, m.pages[id])
	return nil
}

// Write implements Pager.
func (m *MemPager) Write(id PageID, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("btree: write of unallocated page %d", id)
	}
	copy(m.pages[id], data)
	return nil
}

// Flush implements Pager.
func (m *MemPager) Flush() error { return nil }

// Sync implements Pager.
func (m *MemPager) Sync() error { return nil }

// Close implements Pager.
func (m *MemPager) Close() error { return nil }

// Size reports the total bytes held by the pager. It stands in for on-disk
// index size in experiments that run against memory pagers.
func (m *MemPager) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.pages)) * int64(m.pageSize)
}

type filePage struct {
	id    PageID
	data  []byte
	dirty bool
	elem  *list.Element
}

// Every page is stored on disk with a trailer so torn or misdirected writes
// are detected, never silently zero-read:
//
//	[0:pageSize]            page data
//	[pageSize:pageSize+4]   crc32c(data ‖ pageID.be32)
//	[pageSize+4:pageSize+8] pageID (uint32, catches misdirected writes)
//
// The disk frame is therefore PageSize+pageTrailerSize bytes; PageSize keeps
// reporting the usable payload size, so the tree layer is unaffected.
const pageTrailerSize = 8

// FilePager stores pages in a single file with a write-back LRU buffer pool.
// All methods are safe for concurrent use: a single mutex guards the buffer
// pool (cache map, LRU list, page contents in the pool) and the file offsets,
// while hit/miss counters are atomic so CacheStats never blocks.
//
// When a WAL is attached, no page write ever reaches the main file directly:
// write-back (both Sync-driven and eviction-driven) stages pages into the
// log, and only the WAL's checkpoint — which runs strictly after a durable
// commit record — copies them into the main file. Without a WAL the pager
// writes in place and a crash can tear the file; core attaches a WAL to
// every file-backed index unless explicitly disabled.
type FilePager struct {
	mu       sync.Mutex
	f        File
	pageSize int
	diskPage int // pageSize + pageTrailerSize
	npages   uint32
	cap      int
	cache    map[PageID]*filePage
	lru      *list.List // front = most recently used; values are *filePage
	evictErr error      // first swallowed write-back error; surfaced by Sync
	diskBuf  []byte     // scratch disk frame; holders of mu only

	wal      *WAL
	walID    uint8
	tornTail bool // file ended mid-page at open; the tail is ignored

	// Cold tier (optional): flate-compressed copies of clean evicted pages.
	// A pool miss checks here before touching the disk; a hit decompresses
	// and promotes the page back into the pool, removing the cold copy, so a
	// page is never simultaneously pooled and cold (which is what keeps the
	// cold copy from going stale — pages are only ever modified while
	// pooled). Capacity is bounded in compressed bytes; overflow evicts
	// arbitrary entries (they are a cache of re-readable disk state, so any
	// victim is safe).
	compressCold bool
	coldCap      int64
	cold         map[PageID][]byte
	coldBytes    int64 // total compressed bytes currently held

	hits, misses atomic.Uint64 // buffer-pool statistics

	// m aggregates buffer-pool and file-I/O metrics; never nil (a bundle of
	// nil metrics when observability is off), and possibly shared with other
	// pagers of the same index.
	m *obs.PagerMetrics
}

// DefaultCachePages is the buffer-pool capacity used when the caller passes
// a non-positive cache size.
const DefaultCachePages = 4096

// PagerOptions configures OpenFilePagerOpts.
type PagerOptions struct {
	// CachePages bounds the buffer pool (<=0 selects DefaultCachePages).
	CachePages int
	// WAL, when non-nil, routes all write-back through the log; WALFileID
	// distinguishes this pager's frames from other members of the same log.
	WAL       *WAL
	WALFileID uint8
	// FS overrides the filesystem (fault injection); nil selects the OS.
	FS FS
	// Metrics, when non-nil, receives buffer-pool and file-I/O counters. The
	// same bundle may be shared by several pagers (its metrics are atomic);
	// core shares one across an index's four tree files.
	Metrics *obs.PagerMetrics
	// CompressCold keeps flate-compressed copies of clean evicted pages in a
	// second cache tier, turning many would-be disk reads into in-memory
	// decompressions. Index pages front-code their keys, so they still
	// compress 2-4x; the tier holds ColdCapBytes compressed bytes (<=0
	// selects 4x the buffer pool's byte capacity).
	CompressCold bool
	// ColdCapBytes bounds the cold tier's compressed footprint when
	// CompressCold is set.
	ColdCapBytes int64
}

// OpenFilePager opens (or creates) the page file at path with no WAL
// attached. pageSize must match the file's existing page size when the file
// is non-empty; cachePages bounds the buffer pool (<=0 selects
// DefaultCachePages).
func OpenFilePager(path string, pageSize, cachePages int) (*FilePager, error) {
	return OpenFilePagerOpts(path, pageSize, PagerOptions{CachePages: cachePages})
}

// OpenFilePagerOpts opens (or creates) the page file at path. A trailing
// partial page — the signature of a torn append — is tolerated by truncating
// the logical page count to the last full frame; the tail bytes are ignored
// and reclaimed by the next write or WAL recovery.
func OpenFilePagerOpts(path string, pageSize int, o PagerOptions) (*FilePager, error) {
	if pageSize < 512 {
		return nil, fmt.Errorf("btree: page size %d too small (min 512)", pageSize)
	}
	fs := o.FS
	if fs == nil {
		fs = OSFS{}
	}
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	cachePages := o.CachePages
	if cachePages <= 0 {
		cachePages = DefaultCachePages
	}
	m := o.Metrics
	if m == nil {
		m = &obs.PagerMetrics{}
	}
	diskPage := pageSize + pageTrailerSize
	p := &FilePager{
		f:        f,
		pageSize: pageSize,
		diskPage: diskPage,
		npages:   uint32(size / int64(diskPage)),
		tornTail: size%int64(diskPage) != 0,
		cap:      cachePages,
		cache:    make(map[PageID]*filePage),
		lru:      list.New(),
		diskBuf:  make([]byte, diskPage),
		wal:      o.WAL,
		walID:    o.WALFileID,
		m:        m,
	}
	if o.CompressCold {
		p.compressCold = true
		p.cold = make(map[PageID][]byte)
		p.coldCap = o.ColdCapBytes
		if p.coldCap <= 0 {
			p.coldCap = 4 * int64(cachePages) * int64(pageSize)
		}
	}
	if p.wal != nil {
		if err := p.wal.attach(p.walID, p); err != nil {
			f.Close()
			return nil, err
		}
	}
	return p, nil
}

// PageSize implements Pager.
func (p *FilePager) PageSize() int { return p.pageSize }

// NumPages implements Pager.
func (p *FilePager) NumPages() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.npages
}

// Size reports the file footprint in bytes (pages plus their checksum
// trailers).
func (p *FilePager) Size() int64 { return int64(p.NumPages()) * int64(p.diskPage) }

// TornTailAtOpen reports whether the file ended in a partial page when the
// pager was opened (a torn append from a crash; the tail is ignored).
func (p *FilePager) TornTailAtOpen() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tornTail
}

// CacheStats reports buffer-pool hits and misses since the pager opened.
func (p *FilePager) CacheStats() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

// Allocate implements Pager.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := PageID(p.npages)
	p.npages++
	fp := &filePage{id: id, data: make([]byte, p.pageSize), dirty: true}
	p.insert(fp)
	return id, nil
}

// insert adds fp to the pool and evicts down to capacity. Eviction prefers
// the LRU tail; a dirty victim whose write-back fails stays resident (its
// data must not be lost), the error is recorded for the next Sync, and the
// scan moves on to the next-oldest victim so the pool still shrinks when any
// clean (or writable) page exists. Callers must hold p.mu.
//
// fp itself is never a victim: load returns it to a caller that may still
// mutate it (Write copies new data in and marks it dirty only after insert
// returns). When every other page is dirty and unwritable — a failing disk
// mid-eviction — evicting the one clean page we just faulted in would hand
// that caller an orphan whose update the pool never sees, silently losing
// the write the moment the page is next faulted from stale storage.
func (p *FilePager) insert(fp *filePage) {
	fp.elem = p.lru.PushFront(fp)
	p.cache[fp.id] = fp
	e := p.lru.Back()
	for len(p.cache) > p.cap && e != nil {
		victim := e.Value.(*filePage)
		prev := e.Prev()
		if victim == fp {
			e = prev
			continue
		}
		if victim.dirty {
			if err := p.writeFile(victim); err != nil {
				if p.evictErr == nil {
					p.evictErr = fmt.Errorf("btree: evicting page %d: %w", victim.id, err)
				}
				e = prev // keep the dirty page; try an older/cleaner victim
				continue
			}
		}
		p.lru.Remove(e)
		delete(p.cache, victim.id)
		p.m.Evictions.Inc()
		if p.compressCold {
			p.storeCold(victim)
		}
		e = prev
	}
}

// storeCold compresses an evicted page into the cold tier. Incompressible
// pages are skipped — re-reading them from disk costs the same as holding
// them would. Callers must hold p.mu; the victim is clean (dirty victims are
// written back before eviction, so the pool copy equals durable state).
func (p *FilePager) storeCold(victim *filePage) {
	var buf bytes.Buffer
	w, _ := flate.NewWriter(&buf, flate.BestSpeed)
	if _, err := w.Write(victim.data); err != nil {
		return
	}
	if err := w.Close(); err != nil {
		return
	}
	cz := buf.Bytes()
	if len(cz) >= p.pageSize {
		return
	}
	if old, ok := p.cold[victim.id]; ok {
		p.coldBytes -= int64(len(old))
	}
	for p.coldBytes+int64(len(cz)) > p.coldCap {
		dropped := false
		for id, b := range p.cold { // arbitrary victim; all entries are re-readable
			delete(p.cold, id)
			p.coldBytes -= int64(len(b))
			dropped = true
			break
		}
		if !dropped {
			return // single page larger than the whole cap
		}
	}
	p.cold[victim.id] = cz
	p.coldBytes += int64(len(cz))
	p.m.ColdStores.Inc()
}

// loadCold tries to satisfy a pool miss from the cold tier. On a hit the
// entry is removed (the page re-enters the pool, where it may be modified;
// eviction re-stores it fresh). Callers must hold p.mu.
func (p *FilePager) loadCold(id PageID, data []byte) bool {
	cz, ok := p.cold[id]
	if !ok {
		return false
	}
	delete(p.cold, id)
	p.coldBytes -= int64(len(cz))
	r := flate.NewReader(bytes.NewReader(cz))
	n, err := io.ReadFull(r, data)
	if err != nil || n != p.pageSize {
		return false // fall through to the durable copy
	}
	p.m.ColdHits.Inc()
	return true
}

// ColdStats reports the cold tier's current state: resident entries, their
// compressed footprint, and the uncompressed bytes they stand in for. All
// zeros when cold compression is off.
func (p *FilePager) ColdStats() (entries int, compressedBytes, rawBytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cold), p.coldBytes, int64(len(p.cold)) * int64(p.pageSize)
}

// writeFile writes fp back: into the WAL when one is attached (the page then
// reaches the main file only through a post-commit checkpoint), directly into
// the file otherwise. Callers must hold p.mu.
func (p *FilePager) writeFile(fp *filePage) error {
	if p.wal != nil {
		if err := p.wal.stagePage(p.walID, fp.id, fp.data); err != nil {
			return err
		}
		fp.dirty = false
		p.m.PageWrites.Inc()
		return nil
	}
	if err := p.writeRaw(fp.id, fp.data, p.diskBuf); err != nil {
		return err
	}
	fp.dirty = false
	return nil
}

// writeRaw writes one checksummed disk frame at the page's offset. scratch
// must be a diskPage-sized buffer owned by the caller; writeRaw touches no
// pool state, so the WAL checkpoint may call it without holding p.mu.
func (p *FilePager) writeRaw(id PageID, data []byte, scratch []byte) error {
	if len(data) != p.pageSize {
		return fmt.Errorf("btree: page %d write of %d bytes, want %d", id, len(data), p.pageSize)
	}
	frame := scratch[:p.diskPage]
	copy(frame, data)
	binary.BigEndian.PutUint32(frame[p.pageSize+4:], uint32(id))
	crc := crc32.Update(crc32.Checksum(data, castagnoli), castagnoli, frame[p.pageSize+4:p.diskPage])
	binary.BigEndian.PutUint32(frame[p.pageSize:], crc)
	_, err := p.f.WriteAt(frame, int64(id)*int64(p.diskPage))
	if err == nil {
		p.m.PageWrites.Inc()
	}
	return err
}

// applyRecovered writes a replayed WAL page into the main file, extending
// the logical page count when the crash happened before the file grew.
func (p *FilePager) applyRecovered(id PageID, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(data) != p.pageSize {
		return fmt.Errorf("btree: WAL frame for page %d holds %d bytes, want page size %d", id, len(data), p.pageSize)
	}
	if err := p.writeRaw(id, data, p.diskBuf); err != nil {
		return err
	}
	if uint32(id) >= p.npages {
		p.npages = uint32(id) + 1
	}
	return nil
}

// fileSync fsyncs the main file (used by the WAL's checkpoint and recovery).
func (p *FilePager) fileSync() error { return p.f.Sync() }

// truncateTornTail physically removes a torn trailing partial page. Only WAL
// recovery calls it: there the torn tail is positively identified as crash
// debris (replay has just rewritten every committed page), whereas at plain
// open time a size mismatch could equally be a wrong --page-size, which must
// not destroy data.
func (p *FilePager) truncateTornTail() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.tornTail {
		return nil
	}
	size, err := p.f.Size()
	if err != nil {
		return err
	}
	want := int64(p.npages) * int64(p.diskPage)
	if size > want {
		if err := p.f.Truncate(want); err != nil {
			return err
		}
	}
	p.tornTail = false
	return nil
}

// load returns the pooled page for id, faulting it in on a miss. The latest
// staged WAL version wins over the main file; a short read or checksum
// mismatch is an error — a torn page must never be silently zero-read.
// Callers must hold p.mu.
func (p *FilePager) load(id PageID) (*filePage, error) {
	if fp, ok := p.cache[id]; ok {
		p.hits.Add(1)
		p.m.CacheHits.Inc()
		p.lru.MoveToFront(fp.elem)
		return fp, nil
	}
	p.misses.Add(1)
	p.m.CacheMisses.Inc()
	if uint32(id) >= p.npages {
		return nil, fmt.Errorf("btree: access to unallocated page %d (have %d)", id, p.npages)
	}
	data := make([]byte, p.pageSize)
	if p.compressCold && p.loadCold(id, data) {
		// The cold copy was taken at eviction from the then-current pool
		// content, which any staged WAL frame for the page was written from —
		// so it is always at least as fresh as the durable copies below.
		fp := &filePage{id: id, data: data}
		p.insert(fp)
		return fp, nil
	}
	if p.wal != nil {
		ok, err := p.wal.readStaged(p.walID, id, data)
		if err != nil {
			return nil, err
		}
		if ok {
			fp := &filePage{id: id, data: data}
			p.insert(fp)
			return fp, nil
		}
	}
	if err := p.readRaw(id, data); err != nil {
		return nil, err
	}
	fp := &filePage{id: id, data: data}
	p.insert(fp)
	return fp, nil
}

// readRaw reads and verifies one disk frame into data. Callers must hold
// p.mu (it uses the scratch frame buffer).
func (p *FilePager) readRaw(id PageID, data []byte) error {
	frame := p.diskBuf
	n, err := p.f.ReadAt(frame, int64(id)*int64(p.diskPage))
	if n < p.diskPage {
		if err == nil || err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("btree: %w: short read of page %d (%d of %d bytes): %v",
			ErrCorrupt, id, n, p.diskPage, err)
	}
	storedID := binary.BigEndian.Uint32(frame[p.pageSize+4:])
	if storedID != uint32(id) {
		return fmt.Errorf("btree: %w: page %d trailer names page %d (misdirected write)", ErrCorrupt, id, storedID)
	}
	crc := crc32.Update(crc32.Checksum(frame[:p.pageSize], castagnoli), castagnoli, frame[p.pageSize+4:p.diskPage])
	if crc != binary.BigEndian.Uint32(frame[p.pageSize:]) {
		return fmt.Errorf("btree: %w: page %d fails CRC32C (torn or corrupted write)", ErrCorrupt, id)
	}
	copy(data, frame[:p.pageSize])
	p.m.PageReads.Inc()
	return nil
}

// VerifyPage checks the durable copy of one page without disturbing the
// buffer pool: the latest staged WAL frame wins when one exists (readStaged
// re-verifies the frame CRC on every read), otherwise the main-file frame's
// CRC32C + pageID trailer is verified. checked is false when the page has no
// durable frame at all — allocated but never written past the pool — which
// is healthy, not corrupt: there is simply nothing on stable storage to
// verify yet. A checked page that fails verification returns an error
// wrapping ErrCorrupt. The online scrubber walks every allocated page
// through this; holding p.mu for the one-frame read serializes it against
// evictions and checkpoints of the same pager, which is what makes the
// staged-or-file decision race-free.
func (p *FilePager) VerifyPage(id PageID) (checked bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if uint32(id) >= p.npages {
		return false, fmt.Errorf("btree: verify of unallocated page %d (have %d)", id, p.npages)
	}
	buf := make([]byte, p.pageSize)
	if p.wal != nil {
		ok, err := p.wal.readStaged(p.walID, id, buf)
		if err != nil {
			return true, err
		}
		if ok {
			return true, nil
		}
	}
	size, err := p.f.Size()
	if err != nil {
		return false, err
	}
	if int64(id)*int64(p.diskPage)+int64(p.diskPage) > size {
		return false, nil // never flushed: no durable frame to verify
	}
	return true, p.readRaw(id, buf)
}

// Read implements Pager.
func (p *FilePager) Read(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fp, err := p.load(id)
	if err != nil {
		return err
	}
	copy(buf, fp.data)
	return nil
}

// Write implements Pager.
func (p *FilePager) Write(id PageID, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fp, err := p.load(id)
	if err != nil {
		return err
	}
	copy(fp.data, data)
	fp.dirty = true
	return nil
}

// flushPool writes every dirty pooled page back (to the WAL or the file).
// Callers must hold p.mu.
func (p *FilePager) flushPool() error {
	for e := p.lru.Front(); e != nil; e = e.Next() {
		fp := e.Value.(*filePage)
		if fp.dirty {
			if err := p.writeFile(fp); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush implements Pager: dirty pooled pages are written back (staged into
// the WAL when one is attached) without forcing stable storage. core uses it
// to stage all four trees of an index before a single atomic commit.
func (p *FilePager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushPool()
}

// Sync implements Pager. It flushes every dirty pooled page and forces the
// result to stable storage — via WAL commit + checkpoint when a log is
// attached, via fsync otherwise. Only after durability is established does it
// surface (and clear) any write-back error eviction had to swallow since the
// previous Sync: reporting it earlier would claim failure for pages that were
// in fact just flushed, while never fsyncing them.
func (p *FilePager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.flushPool(); err != nil {
		return err
	}
	if p.wal != nil {
		if err := p.wal.Commit(); err != nil {
			return err
		}
	} else if err := p.f.Sync(); err != nil {
		return err
	}
	if err := p.evictErr; err != nil {
		p.evictErr = nil
		return err
	}
	return nil
}

// TakeRecordedError returns (and clears) the first write-back error eviction
// had to swallow, if any. core's group-commit path calls it after the shared
// WAL commit, which bypasses the per-pager Sync that normally surfaces it.
func (p *FilePager) TakeRecordedError() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.evictErr
	p.evictErr = nil
	return err
}

// Close implements Pager.
func (p *FilePager) Close() error {
	if err := p.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}
