package btree

import (
	"container/list"
	"fmt"
	"io"
	"os"
)

// PageID identifies a fixed-size page within a Pager. Page 0 is always the
// tree's meta page; 0 therefore doubles as the nil page reference.
type PageID uint32

// Pager is the raw page I/O abstraction under a B+Tree. Implementations must
// return pages of exactly PageSize bytes. Allocation is grow-only at this
// layer; reuse of freed pages is handled by the tree's freelist.
type Pager interface {
	// PageSize reports the fixed page size in bytes.
	PageSize() int
	// NumPages reports how many pages have been allocated so far.
	NumPages() uint32
	// Allocate appends a new zeroed page and returns its ID.
	Allocate() (PageID, error)
	// Read fills buf (len == PageSize) with the page's content.
	Read(id PageID, buf []byte) error
	// Write stores data (len == PageSize) as the page's content.
	Write(id PageID, data []byte) error
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases resources, flushing first.
	Close() error
}

// MemPager keeps all pages in memory. It is used by tests and by benchmarks
// that want to measure algorithmic cost without disk I/O.
type MemPager struct {
	pageSize int
	pages    [][]byte
}

// NewMemPager returns an in-memory pager with the given page size.
func NewMemPager(pageSize int) *MemPager {
	return &MemPager{pageSize: pageSize}
}

// PageSize implements Pager.
func (m *MemPager) PageSize() int { return m.pageSize }

// NumPages implements Pager.
func (m *MemPager) NumPages() uint32 { return uint32(len(m.pages)) }

// Allocate implements Pager.
func (m *MemPager) Allocate() (PageID, error) {
	m.pages = append(m.pages, make([]byte, m.pageSize))
	return PageID(len(m.pages) - 1), nil
}

// Read implements Pager.
func (m *MemPager) Read(id PageID, buf []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("btree: read of unallocated page %d", id)
	}
	copy(buf, m.pages[id])
	return nil
}

// Write implements Pager.
func (m *MemPager) Write(id PageID, data []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("btree: write of unallocated page %d", id)
	}
	copy(m.pages[id], data)
	return nil
}

// Sync implements Pager.
func (m *MemPager) Sync() error { return nil }

// Close implements Pager.
func (m *MemPager) Close() error { return nil }

// Size reports the total bytes held by the pager. It stands in for on-disk
// index size in experiments that run against memory pagers.
func (m *MemPager) Size() int64 { return int64(len(m.pages)) * int64(m.pageSize) }

type filePage struct {
	id    PageID
	data  []byte
	dirty bool
	elem  *list.Element
}

// FilePager stores pages in a single file with a write-back LRU buffer pool.
type FilePager struct {
	f        *os.File
	pageSize int
	npages   uint32
	cap      int
	cache    map[PageID]*filePage
	lru      *list.List // front = most recently used; values are *filePage

	hits, misses uint64 // buffer-pool statistics
}

// DefaultCachePages is the buffer-pool capacity used when the caller passes
// a non-positive cache size.
const DefaultCachePages = 4096

// OpenFilePager opens (or creates) the page file at path. pageSize must
// match the file's existing page size when the file is non-empty; cachePages
// bounds the buffer pool (<=0 selects DefaultCachePages).
func OpenFilePager(path string, pageSize, cachePages int) (*FilePager, error) {
	if pageSize < 512 {
		return nil, fmt.Errorf("btree: page size %d too small (min 512)", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("btree: file size %d is not a multiple of page size %d", st.Size(), pageSize)
	}
	if cachePages <= 0 {
		cachePages = DefaultCachePages
	}
	return &FilePager{
		f:        f,
		pageSize: pageSize,
		npages:   uint32(st.Size() / int64(pageSize)),
		cap:      cachePages,
		cache:    make(map[PageID]*filePage),
		lru:      list.New(),
	}, nil
}

// PageSize implements Pager.
func (p *FilePager) PageSize() int { return p.pageSize }

// NumPages implements Pager.
func (p *FilePager) NumPages() uint32 { return p.npages }

// Size reports the current file size in bytes.
func (p *FilePager) Size() int64 { return int64(p.npages) * int64(p.pageSize) }

// CacheStats reports buffer-pool hits and misses since the pager opened.
func (p *FilePager) CacheStats() (hits, misses uint64) { return p.hits, p.misses }

// Allocate implements Pager.
func (p *FilePager) Allocate() (PageID, error) {
	id := PageID(p.npages)
	p.npages++
	fp := &filePage{id: id, data: make([]byte, p.pageSize), dirty: true}
	p.insert(fp)
	return id, nil
}

func (p *FilePager) insert(fp *filePage) {
	fp.elem = p.lru.PushFront(fp)
	p.cache[fp.id] = fp
	for len(p.cache) > p.cap {
		tail := p.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*filePage)
		if victim.dirty {
			if err := p.writeFile(victim); err != nil {
				// Keep the dirty page resident rather than losing data; the
				// error will resurface on the next Sync.
				p.lru.MoveToFront(tail)
				return
			}
		}
		p.lru.Remove(tail)
		delete(p.cache, victim.id)
	}
}

func (p *FilePager) writeFile(fp *filePage) error {
	if _, err := p.f.WriteAt(fp.data, int64(fp.id)*int64(p.pageSize)); err != nil {
		return err
	}
	fp.dirty = false
	return nil
}

func (p *FilePager) load(id PageID) (*filePage, error) {
	if fp, ok := p.cache[id]; ok {
		p.hits++
		p.lru.MoveToFront(fp.elem)
		return fp, nil
	}
	p.misses++
	if uint32(id) >= p.npages {
		return nil, fmt.Errorf("btree: access to unallocated page %d (have %d)", id, p.npages)
	}
	data := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(data, int64(id)*int64(p.pageSize)); err != nil && err != io.EOF {
		return nil, err
	}
	fp := &filePage{id: id, data: data}
	p.insert(fp)
	return fp, nil
}

// Read implements Pager.
func (p *FilePager) Read(id PageID, buf []byte) error {
	fp, err := p.load(id)
	if err != nil {
		return err
	}
	copy(buf, fp.data)
	return nil
}

// Write implements Pager.
func (p *FilePager) Write(id PageID, data []byte) error {
	fp, err := p.load(id)
	if err != nil {
		return err
	}
	copy(fp.data, data)
	fp.dirty = true
	return nil
}

// Sync implements Pager.
func (p *FilePager) Sync() error {
	for e := p.lru.Front(); e != nil; e = e.Next() {
		fp := e.Value.(*filePage)
		if fp.dirty {
			if err := p.writeFile(fp); err != nil {
				return err
			}
		}
	}
	return p.f.Sync()
}

// Close implements Pager.
func (p *FilePager) Close() error {
	if err := p.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}
