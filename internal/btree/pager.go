package btree

import (
	"container/list"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// PageID identifies a fixed-size page within a Pager. Page 0 is always the
// tree's meta page; 0 therefore doubles as the nil page reference.
type PageID uint32

// Pager is the raw page I/O abstraction under a B+Tree. Implementations must
// return pages of exactly PageSize bytes. Allocation is grow-only at this
// layer; reuse of freed pages is handled by the tree's freelist.
type Pager interface {
	// PageSize reports the fixed page size in bytes.
	PageSize() int
	// NumPages reports how many pages have been allocated so far.
	NumPages() uint32
	// Allocate appends a new zeroed page and returns its ID.
	Allocate() (PageID, error)
	// Read fills buf (len == PageSize) with the page's content.
	Read(id PageID, buf []byte) error
	// Write stores data (len == PageSize) as the page's content.
	Write(id PageID, data []byte) error
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases resources, flushing first.
	Close() error
}

// MemPager keeps all pages in memory. It is used by tests and by benchmarks
// that want to measure algorithmic cost without disk I/O.
//
// Concurrent Reads are safe; Allocate and Write require external
// serialization against all other calls (the B+Tree's RWMutex provides
// exactly that: writers hold the exclusive lock).
type MemPager struct {
	pageSize int
	pages    [][]byte
}

// NewMemPager returns an in-memory pager with the given page size.
func NewMemPager(pageSize int) *MemPager {
	return &MemPager{pageSize: pageSize}
}

// PageSize implements Pager.
func (m *MemPager) PageSize() int { return m.pageSize }

// NumPages implements Pager.
func (m *MemPager) NumPages() uint32 { return uint32(len(m.pages)) }

// Allocate implements Pager.
func (m *MemPager) Allocate() (PageID, error) {
	m.pages = append(m.pages, make([]byte, m.pageSize))
	return PageID(len(m.pages) - 1), nil
}

// Read implements Pager.
func (m *MemPager) Read(id PageID, buf []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("btree: read of unallocated page %d", id)
	}
	copy(buf, m.pages[id])
	return nil
}

// Write implements Pager.
func (m *MemPager) Write(id PageID, data []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("btree: write of unallocated page %d", id)
	}
	copy(m.pages[id], data)
	return nil
}

// Sync implements Pager.
func (m *MemPager) Sync() error { return nil }

// Close implements Pager.
func (m *MemPager) Close() error { return nil }

// Size reports the total bytes held by the pager. It stands in for on-disk
// index size in experiments that run against memory pagers.
func (m *MemPager) Size() int64 { return int64(len(m.pages)) * int64(m.pageSize) }

type filePage struct {
	id    PageID
	data  []byte
	dirty bool
	elem  *list.Element
}

// FilePager stores pages in a single file with a write-back LRU buffer pool.
// All methods are safe for concurrent use: a single mutex guards the buffer
// pool (cache map, LRU list, page contents in the pool) and the file offsets,
// while hit/miss counters are atomic so CacheStats never blocks.
type FilePager struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	npages   uint32
	cap      int
	cache    map[PageID]*filePage
	lru      *list.List // front = most recently used; values are *filePage
	evictErr error      // first swallowed write-back error; surfaced by Sync

	hits, misses atomic.Uint64 // buffer-pool statistics
}

// DefaultCachePages is the buffer-pool capacity used when the caller passes
// a non-positive cache size.
const DefaultCachePages = 4096

// OpenFilePager opens (or creates) the page file at path. pageSize must
// match the file's existing page size when the file is non-empty; cachePages
// bounds the buffer pool (<=0 selects DefaultCachePages).
func OpenFilePager(path string, pageSize, cachePages int) (*FilePager, error) {
	if pageSize < 512 {
		return nil, fmt.Errorf("btree: page size %d too small (min 512)", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("btree: file size %d is not a multiple of page size %d", st.Size(), pageSize)
	}
	if cachePages <= 0 {
		cachePages = DefaultCachePages
	}
	return &FilePager{
		f:        f,
		pageSize: pageSize,
		npages:   uint32(st.Size() / int64(pageSize)),
		cap:      cachePages,
		cache:    make(map[PageID]*filePage),
		lru:      list.New(),
	}, nil
}

// PageSize implements Pager.
func (p *FilePager) PageSize() int { return p.pageSize }

// NumPages implements Pager.
func (p *FilePager) NumPages() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.npages
}

// Size reports the current file size in bytes.
func (p *FilePager) Size() int64 { return int64(p.NumPages()) * int64(p.pageSize) }

// CacheStats reports buffer-pool hits and misses since the pager opened.
func (p *FilePager) CacheStats() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

// Allocate implements Pager.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := PageID(p.npages)
	p.npages++
	fp := &filePage{id: id, data: make([]byte, p.pageSize), dirty: true}
	p.insert(fp)
	return id, nil
}

// insert adds fp to the pool and evicts down to capacity. Eviction prefers
// the LRU tail; a dirty victim whose write-back fails stays resident (its
// data must not be lost), the error is recorded for the next Sync, and the
// scan moves on to the next-oldest victim so the pool still shrinks when any
// clean (or writable) page exists. Callers must hold p.mu.
func (p *FilePager) insert(fp *filePage) {
	fp.elem = p.lru.PushFront(fp)
	p.cache[fp.id] = fp
	e := p.lru.Back()
	for len(p.cache) > p.cap && e != nil {
		victim := e.Value.(*filePage)
		prev := e.Prev()
		if victim.dirty {
			if err := p.writeFile(victim); err != nil {
				if p.evictErr == nil {
					p.evictErr = fmt.Errorf("btree: evicting page %d: %w", victim.id, err)
				}
				e = prev // keep the dirty page; try an older/cleaner victim
				continue
			}
		}
		p.lru.Remove(e)
		delete(p.cache, victim.id)
		e = prev
	}
}

// writeFile writes fp back to disk. Callers must hold p.mu.
func (p *FilePager) writeFile(fp *filePage) error {
	if _, err := p.f.WriteAt(fp.data, int64(fp.id)*int64(p.pageSize)); err != nil {
		return err
	}
	fp.dirty = false
	return nil
}

// load returns the pooled page for id, faulting it in on a miss. Callers
// must hold p.mu.
func (p *FilePager) load(id PageID) (*filePage, error) {
	if fp, ok := p.cache[id]; ok {
		p.hits.Add(1)
		p.lru.MoveToFront(fp.elem)
		return fp, nil
	}
	p.misses.Add(1)
	if uint32(id) >= p.npages {
		return nil, fmt.Errorf("btree: access to unallocated page %d (have %d)", id, p.npages)
	}
	data := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(data, int64(id)*int64(p.pageSize)); err != nil && err != io.EOF {
		return nil, err
	}
	fp := &filePage{id: id, data: data}
	p.insert(fp)
	return fp, nil
}

// Read implements Pager.
func (p *FilePager) Read(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fp, err := p.load(id)
	if err != nil {
		return err
	}
	copy(buf, fp.data)
	return nil
}

// Write implements Pager.
func (p *FilePager) Write(id PageID, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fp, err := p.load(id)
	if err != nil {
		return err
	}
	copy(fp.data, data)
	fp.dirty = true
	return nil
}

// Sync implements Pager. It flushes every dirty pooled page and surfaces any
// write-back error that eviction had to swallow since the previous Sync;
// a Sync that manages to flush everything clears that recorded error after
// reporting it once, so a subsequent Sync returns nil.
func (p *FilePager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for e := p.lru.Front(); e != nil; e = e.Next() {
		fp := e.Value.(*filePage)
		if fp.dirty {
			if err := p.writeFile(fp); err != nil {
				return err
			}
		}
	}
	if err := p.evictErr; err != nil {
		p.evictErr = nil
		return err
	}
	return p.f.Sync()
}

// Close implements Pager.
func (p *FilePager) Close() error {
	if err := p.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}
