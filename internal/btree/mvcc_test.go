package btree

import (
	"fmt"
	"sync"
	"testing"
)

// TestSnapshotIsolation pins a snapshot, mutates the tree heavily across
// several publishes, and verifies the snapshot still returns exactly the
// entries of its version — no new keys, no changed values, no lost keys.
func TestSnapshotIsolation(t *testing.T) {
	tr := newMemTree(t, 512)
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Publish(1)
	snap := tr.Snapshot()

	// Overwrite every value, delete half the keys, add new keys; publish
	// some of it and leave the rest pending. The reader is pinned at epoch 1,
	// so Reclaim(1) must not recycle any page the snapshot can reach.
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), []byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	tr.Publish(2)
	tr.Reclaim(1)
	for i := 0; i < n; i += 2 {
		if _, err := tr.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := n; i < 2*n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Publish(3)
	tr.Reclaim(1)

	if got, want := snap.Len(), uint64(n); got != want {
		t.Fatalf("snapshot Len = %d, want %d", got, want)
	}
	for i := 0; i < n; i++ {
		v, ok, err := snap.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != string(val(i)) {
			t.Fatalf("snapshot Get(%d) = %q ok=%v, want original %q", i, v, ok, val(i))
		}
	}
	if _, ok, err := snap.Get(key(n + 1)); err != nil || ok {
		t.Fatalf("snapshot sees key inserted after pin (ok=%v err=%v)", ok, err)
	}
	count := 0
	if err := snap.Scan(nil, nil, func(k, v []byte) (bool, error) {
		count++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("snapshot Scan visited %d entries, want %d", count, n)
	}
	if err := tr.CheckVersions(); err != nil {
		t.Fatal(err)
	}

	// Once the reader is done, its version's pages may drain.
	tr.Reclaim(3)
	if err := tr.CheckVersions(); err != nil {
		t.Fatal(err)
	}
	// The live tree reflects all mutations.
	for i := 1; i < n; i += 2 {
		v, ok, err := tr.Get(key(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("new-%d", i) {
			t.Fatalf("live Get(%d) = %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

// TestSnapshotConcurrentWithWriter races lock-free snapshot scans against a
// publishing writer under the race detector. Every scan must see a complete,
// self-consistent published version: exactly the keys of some committed
// batch boundary, in order.
func TestSnapshotConcurrentWithWriter(t *testing.T) {
	tr := newMemTree(t, 512)
	const batches = 40
	const perBatch = 25
	// Epoch e (1-based) commits keys [0, e*perBatch).
	if err := func() error {
		for i := 0; i < perBatch; i++ {
			if err := tr.Put(key(i), val(i)); err != nil {
				return err
			}
		}
		tr.Publish(1)
		return nil
	}(); err != nil {
		t.Fatal(err)
	}

	// Emulate core's pin protocol: readers register the epoch they snapshot
	// under a shared mutex; the writer reclaims only below the minimum pin.
	var pinMu sync.Mutex
	pins := make(map[uint64]int)
	cur := uint64(1)
	pin := func() (Snapshot, uint64) {
		pinMu.Lock()
		defer pinMu.Unlock()
		s := tr.Snapshot()
		pins[cur]++
		return s, cur
	}
	unpin := func(e uint64) {
		pinMu.Lock()
		defer pinMu.Unlock()
		if pins[e]--; pins[e] == 0 {
			delete(pins, e)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, epoch := pin()
				err := func() error {
					defer unpin(epoch)
					n := int(snap.Len())
					if n%perBatch != 0 || n == 0 {
						return fmt.Errorf("snapshot Len %d is not a batch boundary", n)
					}
					seen := 0
					prev := []byte(nil)
					if err := snap.Scan(nil, nil, func(k, v []byte) (bool, error) {
						if prev != nil && string(k) <= string(prev) {
							return false, fmt.Errorf("keys out of order: %q after %q", k, prev)
						}
						prev = append(prev[:0], k...)
						seen++
						return true, nil
					}); err != nil {
						return err
					}
					if seen != n {
						return fmt.Errorf("scan saw %d keys, snapshot Len %d", seen, n)
					}
					return nil
				}()
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for e := uint64(2); e <= batches; e++ {
		base := int(e-1) * perBatch
		for i := 0; i < perBatch; i++ {
			if err := tr.Put(key(base+i), val(base+i)); err != nil {
				t.Fatal(err)
			}
		}
		tr.Publish(e)
		pinMu.Lock()
		cur = e
		min := e
		for p := range pins {
			if p < min {
				min = p
			}
		}
		pinMu.Unlock()
		tr.Reclaim(min)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := tr.CheckVersions(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckVersionsCatchesReachableFree corrupts the version bookkeeping on
// purpose and expects CheckVersions to flag it.
func TestCheckVersionsCatchesReachableFree(t *testing.T) {
	tr := newMemTree(t, 512)
	for i := 0; i < 200; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Publish(1)
	if err := tr.CheckVersions(); err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	tr.reusable = append(tr.reusable, tr.root)
	tr.mu.Unlock()
	if err := tr.CheckVersions(); err == nil {
		t.Fatal("CheckVersions accepted the live root on the reusable list")
	}
	tr.mu.Lock()
	tr.reusable = tr.reusable[:len(tr.reusable)-1]
	tr.mu.Unlock()
	if err := tr.CheckVersions(); err != nil {
		t.Fatal(err)
	}
}
