// Command vistbench regenerates the tables and figures of the ViST paper's
// evaluation (Section 4) against generated workloads.
//
// Usage:
//
//	vistbench -exp all -scale 0.2
//	vistbench -exp table4,fig10a
//
// Experiments: table4, fig10a, fig10b, fig11a, fig11b, ablation-labeling,
// ablation-verify, ablation-pager, ablation-refined, scaling, concurrency,
// durability, scrub, obs, compression, all. The -scale flag multiplies dataset sizes (1.0 is a
// laptop-sized run; the paper's full sizes need 15–50). The -seed flag fixes
// the workload generator; -mintime sets the minimum measurement window per
// timed query.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vist/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiments: table4, fig10a, fig10b, fig11a, fig11b, ablation-labeling, ablation-verify, ablation-pager, ablation-refined, scaling, concurrency, durability, scrub, obs, compression, all")
		scale   = flag.Float64("scale", 0.2, "dataset size multiplier (1.0 ≈ laptop-sized)")
		seed    = flag.Int64("seed", 1, "workload seed")
		minTime = flag.Duration("mintime", 100*time.Millisecond, "minimum measurement window per query")
	)
	flag.Parse()
	cfg := bench.Config{Scale: *scale, Seed: *seed, MinTime: *minTime}

	selected := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		selected[strings.TrimSpace(e)] = true
	}
	all := selected["all"]

	type printer interface{ Fprint(w io.Writer) }
	run := func(name string, f func() (printer, error)) {
		if !all && !selected[name] {
			return
		}
		start := time.Now()
		res, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vistbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		res.Fprint(os.Stdout)
		fmt.Printf("(%s completed in %s)\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table4", func() (printer, error) { return bench.RunTable4(cfg) })
	run("fig10a", func() (printer, error) { return bench.RunFig10a(cfg) })
	run("fig10b", func() (printer, error) { return bench.RunFig10b(cfg) })
	run("fig11a", func() (printer, error) { return bench.RunFig11a(cfg) })
	run("fig11b", func() (printer, error) { return bench.RunFig11b(cfg) })
	run("ablation-labeling", func() (printer, error) { return bench.RunAblationLabeling(cfg) })
	run("ablation-verify", func() (printer, error) { return bench.RunAblationVerify(cfg) })
	run("ablation-pager", func() (printer, error) { return bench.RunAblationPager(cfg) })
	run("ablation-refined", func() (printer, error) { return bench.RunAblationRefined(cfg) })
	run("scaling", func() (printer, error) { return bench.RunScaling(cfg) })
	run("concurrency", func() (printer, error) { return bench.RunConcurrency(cfg) })
	run("durability", func() (printer, error) { return bench.RunDurability(cfg) })
	run("scrub", func() (printer, error) { return bench.RunScrub(cfg) })
	run("obs", func() (printer, error) { return bench.RunObs(cfg) })
	run("compression", func() (printer, error) { return bench.RunCompression(cfg) })
}
