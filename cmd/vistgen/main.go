// Command vistgen emits the paper's evaluation workloads as XML record
// streams suitable for `vist index`.
//
// Usage:
//
//	vistgen -dataset dblp  -n 1000 [-seed S]  > dblp.xml
//	vistgen -dataset xmark -n 400  [-seed S]  > xmark.xml
//	vistgen -dataset synthetic -n 100 -k 10 -j 8 -l 30 > synth.xml
//	vistgen -dataset synthetic -queries 10 -l 6        # emit queries instead
//
// All datasets are deterministic for a fixed -seed (default 1).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"vist/internal/gen"
	"vist/internal/xmltree"
)

func main() {
	var (
		dataset = flag.String("dataset", "dblp", "dblp, xmark, or synthetic")
		n       = flag.Int("n", 100, "number of records")
		seed    = flag.Int64("seed", 1, "generator seed")
		k       = flag.Int("k", 10, "synthetic: conceptual tree height")
		j       = flag.Int("j", 8, "synthetic: conceptual fan-out")
		l       = flag.Int("l", 30, "synthetic: nodes per record (or query length with -queries)")
		queries = flag.Int("queries", 0, "synthetic: emit this many random queries instead of records")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	var docs []*xmltree.Node
	switch *dataset {
	case "dblp":
		docs = gen.DBLP(gen.DBLPConfig{Records: *n, Seed: *seed})
	case "xmark":
		per := *n / 4
		if per < 1 {
			per = 1
		}
		docs = gen.XMark(gen.XMarkConfig{Items: per, Persons: per, OpenAuctions: per, ClosedAuctions: per, Seed: *seed})
	case "synthetic":
		cfg := gen.SyntheticConfig{K: *k, J: *j, L: *l, N: *n, Seed: *seed}
		if *queries > 0 {
			for _, q := range gen.SyntheticQueries(cfg, *queries, *l, *seed+1) {
				fmt.Fprintln(w, q)
			}
			return
		}
		docs = gen.Synthetic(cfg)
	default:
		fmt.Fprintf(os.Stderr, "vistgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	for _, d := range docs {
		if err := xmltree.WriteXML(w, d); err != nil {
			fmt.Fprintln(os.Stderr, "vistgen:", err)
			os.Exit(1)
		}
	}
}
