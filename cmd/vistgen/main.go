// Command vistgen emits the paper's evaluation workloads as XML record
// streams suitable for `vist index`.
//
// Usage:
//
//	vistgen -dataset dblp  -n 1000 [-seed S]  > dblp.xml
//	vistgen -dataset xmark -n 400  [-seed S]  > xmark.xml
//	vistgen -dataset synthetic -n 100 -k 10 -j 8 -l 30 > synth.xml
//	vistgen -dataset synthetic -queries 10 -l 6        # emit queries instead
//	vistgen -dataset dblp -n 10000 -seed 11 -out .bench-corpus/dblp-10k.xml
//
// All datasets are deterministic for a fixed -seed (default 1). With -out the
// corpus is written via a temp file and renamed into place, so an interrupted
// run never leaves a truncated file behind — CI caches the result between
// jobs and a half-corpus in the cache would silently skew every benchmark
// that reads it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vist/internal/gen"
	"vist/internal/xmltree"
)

func main() {
	var (
		dataset = flag.String("dataset", "dblp", "dblp, xmark, or synthetic")
		n       = flag.Int("n", 100, "number of records")
		seed    = flag.Int64("seed", 1, "generator seed")
		k       = flag.Int("k", 10, "synthetic: conceptual tree height")
		j       = flag.Int("j", 8, "synthetic: conceptual fan-out")
		l       = flag.Int("l", 30, "synthetic: nodes per record (or query length with -queries)")
		queries = flag.Int("queries", 0, "synthetic: emit this many random queries instead of records")
		out     = flag.String("out", "", "write atomically to this file instead of stdout (parent dir is created)")
	)
	flag.Parse()

	var sink io.Writer = os.Stdout
	var tmp *os.File
	if *out != "" {
		if dir := filepath.Dir(*out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		var err error
		tmp, err = os.CreateTemp(filepath.Dir(*out), ".vistgen-*")
		if err != nil {
			fatal(err)
		}
		defer os.Remove(tmp.Name())
		sink = tmp
	}
	w := bufio.NewWriter(sink)
	defer func() {
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if tmp != nil {
			if err := tmp.Close(); err != nil {
				fatal(err)
			}
			if err := os.Rename(tmp.Name(), *out); err != nil {
				fatal(err)
			}
		}
	}()

	var docs []*xmltree.Node
	switch *dataset {
	case "dblp":
		docs = gen.DBLP(gen.DBLPConfig{Records: *n, Seed: *seed})
	case "xmark":
		per := *n / 4
		if per < 1 {
			per = 1
		}
		docs = gen.XMark(gen.XMarkConfig{Items: per, Persons: per, OpenAuctions: per, ClosedAuctions: per, Seed: *seed})
	case "synthetic":
		cfg := gen.SyntheticConfig{K: *k, J: *j, L: *l, N: *n, Seed: *seed}
		if *queries > 0 {
			for _, q := range gen.SyntheticQueries(cfg, *queries, *l, *seed+1) {
				fmt.Fprintln(w, q)
			}
			return
		}
		docs = gen.Synthetic(cfg)
	default:
		fmt.Fprintf(os.Stderr, "vistgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	for _, d := range docs {
		if err := xmltree.WriteXML(w, d); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vistgen:", err)
	os.Exit(1)
}
