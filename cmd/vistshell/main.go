// Command vistshell is an interactive explorer for ViST indexes.
//
//	vistshell -dir ./idx
//
// Commands:
//
//	query EXPR        run a path expression (candidate answers)
//	verify EXPR       run a path expression with exact refinement
//	explain EXPR      run a query and show its stage-timing breakdown,
//	                  work counters, and chosen query plan
//	get ID            print a stored document
//	delete ID         remove a document
//	load FILE         index every record in an XML file
//	stats             index statistics
//	metrics           live metrics snapshot (counters and histograms)
//	check             structural integrity scan
//	seq ID            print a document's structure-encoded sequence
//	help              this text
//	quit              exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vist/internal/core"
	"vist/internal/seq"
	"vist/internal/xmltree"
)

func main() {
	dir := flag.String("dir", "", "index directory (required)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "vistshell: -dir is required")
		os.Exit(2)
	}
	ix, err := core.Open(*dir, core.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vistshell:", err)
		os.Exit(1)
	}
	defer ix.Close()

	fmt.Printf("vistshell — %d documents, %d suffix-tree nodes. Type 'help'.\n", ix.DocCount(), ix.NodeCount())
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("vist> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, arg := splitCommand(line)
		if err := run(ix, cmd, arg); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func splitCommand(line string) (cmd, arg string) {
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return line[:i], strings.TrimSpace(line[i+1:])
	}
	return line, ""
}

func run(ix *core.Index, cmd, arg string) error {
	switch cmd {
	case "quit", "exit", "q":
		return errQuit
	case "help", "?":
		fmt.Println("query EXPR | verify EXPR | explain EXPR | get ID | delete ID | load FILE | seq ID | stats | metrics | check | quit")
		return nil
	case "query", "verify":
		start := time.Now()
		var ids []core.DocID
		var err error
		if cmd == "verify" {
			ids, err = ix.QueryVerified(arg)
		} else {
			ids, err = ix.Query(arg)
		}
		if err != nil {
			return err
		}
		printIDs(ids)
		fmt.Printf("%d documents in %s\n", len(ids), time.Since(start).Round(time.Microsecond))
		return nil
	case "explain":
		start := time.Now()
		ids, stats, err := ix.QueryWithStats(arg)
		if err != nil {
			return err
		}
		printIDs(ids)
		fmt.Printf("%d documents in %s\n%s\n", len(ids), time.Since(start).Round(time.Microsecond), stats.Explain())
		return nil
	case "metrics":
		fmt.Print(ix.Metrics())
		return nil
	case "get":
		id, err := strconv.ParseUint(arg, 10, 64)
		if err != nil {
			return fmt.Errorf("bad ID %q", arg)
		}
		doc, err := ix.Get(core.DocID(id))
		if err != nil {
			return err
		}
		return xmltree.WriteXML(os.Stdout, doc)
	case "seq":
		id, err := strconv.ParseUint(arg, 10, 64)
		if err != nil {
			return fmt.Errorf("bad ID %q", arg)
		}
		doc, err := ix.Get(core.DocID(id))
		if err != nil {
			return err
		}
		s := seq.Encode(doc, ix.Dict())
		fmt.Println(s.String(ix.Dict()))
		return nil
	case "delete":
		id, err := strconv.ParseUint(arg, 10, 64)
		if err != nil {
			return fmt.Errorf("bad ID %q", arg)
		}
		if err := ix.Delete(core.DocID(id)); err != nil {
			return err
		}
		fmt.Println("deleted", id)
		return nil
	case "load":
		f, err := os.Open(arg)
		if err != nil {
			return err
		}
		defer f.Close()
		docs, err := xmltree.ParseAll(f)
		if err != nil {
			return err
		}
		for _, d := range docs {
			if _, err := ix.Insert(d); err != nil {
				return err
			}
		}
		fmt.Printf("indexed %d documents (%d total)\n", len(docs), ix.DocCount())
		return nil
	case "stats":
		fmt.Printf("documents:         %d\n", ix.DocCount())
		fmt.Printf("suffix-tree nodes: %d\n", ix.NodeCount())
		fmt.Printf("max tree depth:    %d\n", ix.MaxTreeDepth())
		fmt.Printf("index bytes:       %d\n", ix.IndexSizeBytes())
		fmt.Printf("dictionary names:  %d\n", ix.Dict().Len())
		return nil
	case "check":
		rep, err := ix.Check()
		if err != nil {
			return err
		}
		fmt.Printf("nodes=%d docs=%d sequential=%d\n", rep.Nodes, rep.Docs, rep.Sequential)
		if rep.Ok() {
			fmt.Println("OK")
		} else {
			for _, p := range rep.Problems {
				fmt.Println("PROBLEM:", p)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

func printIDs(ids []core.DocID) {
	for i, id := range ids {
		if i == 20 {
			fmt.Printf("… and %d more\n", len(ids)-20)
			return
		}
		fmt.Println(id)
	}
}
