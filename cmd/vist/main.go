// Command vist builds and queries file-backed ViST indexes.
//
// Usage:
//
//	vist index  -dir ./idx [-dtd s.dtd] [-lambda N] doc.xml …
//	                                               index XML files (each file
//	                                               may hold many record fragments);
//	                                               -dtd fixes the sibling order,
//	                                               -lambda sets the labeling fan-out
//	                                               (index creation only)
//	vist query  -dir ./idx [-verify|-explain] [-timeout D] [-max-results N] 'EXPR'
//	                                               run a path expression; -explain
//	                                               prints the per-stage timing
//	                                               breakdown, work counters, and
//	                                               the chosen query plan;
//	                                               -timeout and -max-results bound
//	                                               its work (on cut-off: partial
//	                                               stats to stderr, exit 1)
//	vist serve  -dir ./idx [-addr A] [-metrics-addr A] [-slow-query D]
//	            [-query-timeout D] [-query-max-pages N] [-drain D]
//	            [-scrub D] [-scrub-rate N] [-wal-max-bytes N]
//	            [-shards N] [-ship]
//	                                               HTTP query API on -addr; with
//	                                               -metrics-addr, /metrics, expvar
//	                                               (/debug/vars) and net/http/pprof
//	                                               on a second listener; -slow-query
//	                                               logs slow queries to stderr;
//	                                               -query-timeout and
//	                                               -query-max-pages bound every
//	                                               served query by default;
//	                                               SIGINT/SIGTERM shut down
//	                                               gracefully, draining requests up
//	                                               to -drain; -scrub runs background
//	                                               verification passes at that
//	                                               interval (-scrub-rate pages/sec);
//	                                               -wal-max-bytes auto-checkpoints
//	                                               the write-ahead log past that
//	                                               size; /healthz reports 503 with
//	                                               the cause while the index is
//	                                               degraded, /readyz gates traffic
//	                                               until startup completes and
//	                                               reports per-shard readiness;
//	                                               -shards N partitions documents
//	                                               across N in-process shards by
//	                                               docID hash, queries scatter-
//	                                               gather across them; -ship keeps
//	                                               an append-only log of committed
//	                                               WAL frames and serves it on
//	                                               /wal/ship for replicas (single
//	                                               shard only)
//	vist serve  -router -backends URL,URL,… [-addr A] [-metrics-addr A]
//	            [-hedge D] [-drain D]
//	                                               stateless scatter-gather router:
//	                                               fans /query out to every backend
//	                                               and merges results, routes
//	                                               /insert, /delete, and /get to the
//	                                               owning backend by docID hash;
//	                                               -hedge duplicates slow backend
//	                                               reads after that delay and takes
//	                                               the first response
//	vist replicate -dir ./rep -from URL [-addr A] [-poll D]
//	            [-metrics-addr A] [-drain D]
//	                                               WAL-shipped read replica: polls
//	                                               the leader's /wal/ship every
//	                                               -poll, applies committed frames,
//	                                               and serves read-only queries on
//	                                               -addr (writes get 503); lag is
//	                                               exported as replica.lag_bytes
//	vist get    -dir ./idx ID                      print a stored document
//	vist delete -dir ./idx ID                      remove a document
//	vist stats  -dir ./idx                         show index statistics
//	vist check  -dir ./idx                         verify structural invariants
//	vist fsck   -dir ./idx [-repair] [-compact]    offline verification: WAL
//	                                               recovery, a CRC sweep of every
//	                                               page, the structural invariant
//	                                               scan, and a decode of every
//	                                               stored document; -repair
//	                                               rebuilds the index from its
//	                                               document store (the old
//	                                               directory is kept as
//	                                               DIR.pre-repair); -compact
//	                                               rewrites a healthy index into
//	                                               the current storage format
//	                                               (old directory kept as
//	                                               DIR.pre-compact)
//	vist export -dir ./idx > docs.xml              dump all stored documents
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"vist/internal/cluster"
	"vist/internal/core"
	"vist/internal/xmltree"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dir := fs.String("dir", "", "index directory (required)")
	verify := fs.Bool("verify", false, "refine candidates against stored documents (query only)")
	explain := fs.Bool("explain", false, "print the per-stage timing breakdown, work counters, and query plan (query only)")
	lambda := fs.Uint64("lambda", 0, "expected fan-out for dynamic labeling (index creation)")
	dtd := fs.String("dtd", "", "DTD file supplying the sibling order (index creation)")
	timeout := fs.Duration("timeout", 0, "cut the query off after this long (query only; 0 = no deadline)")
	maxResults := fs.Int("max-results", 0, "cut the query off past this many candidate documents (query only; 0 = unlimited)")
	addr := fs.String("addr", "localhost:8080", "HTTP query API address (serve only)")
	metricsAddr := fs.String("metrics-addr", "", "metrics/debug listener: /metrics, expvar, pprof (serve only; empty = disabled)")
	slowQuery := fs.Duration("slow-query", 0, "log queries at or over this duration to stderr (serve only; 0 = disabled)")
	queryTimeout := fs.Duration("query-timeout", 30*time.Second, "default deadline for each served query (serve only; 0 = none)")
	queryMaxPages := fs.Int("query-max-pages", 0, "page-fetch budget for each served query (serve only; 0 = unlimited)")
	drain := fs.Duration("drain", 30*time.Second, "in-flight request drain bound on graceful shutdown (serve only)")
	scrub := fs.Duration("scrub", 0, "background scrub pass interval (serve only; 0 = disabled)")
	scrubRate := fs.Int("scrub-rate", 0, "background scrub rate in pages/sec (serve only; 0 = default, negative = unthrottled)")
	walMax := fs.Int64("wal-max-bytes", 0, "auto-checkpoint when the write-ahead log exceeds this size (0 = unbounded)")
	repair := fs.Bool("repair", false, "rebuild the index from its document store (fsck only)")
	compact := fs.Bool("compact", false, "rewrite the index into the current storage format, packing pages (fsck only)")
	legacyFormat := fs.Bool("legacy-format", false, "use the original fixed-width storage layout for new or compacted indexes")
	shards := fs.Int("shards", 0, "partition documents across this many in-process shards (serve only; 0 = single index)")
	ship := fs.Bool("ship", false, "keep a WAL ship log and serve it on /wal/ship for replicas (serve only, single shard)")
	router := fs.Bool("router", false, "run as a stateless scatter-gather router over -backends instead of opening an index (serve only)")
	backends := fs.String("backends", "", "comma-separated backend base URLs, e.g. http://h1:8080,http://h2:8080 (router only)")
	hedge := fs.Duration("hedge", 0, "duplicate slow backend reads after this delay (router only; 0 = disabled)")
	from := fs.String("from", "", "leader base URL to replicate from (replicate only)")
	poll := fs.Duration("poll", time.Second, "leader poll interval (replicate only)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if cmd == "serve" && *router {
		// The router holds no index of its own, so -dir is not required.
		if *backends == "" {
			fmt.Fprintln(os.Stderr, "vist: serve -router requires -backends")
			os.Exit(2)
		}
		var urls []string
		for _, b := range strings.Split(*backends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				urls = append(urls, strings.TrimRight(b, "/"))
			}
		}
		if err := runRouter(*addr, *metricsAddr, urls, *hedge, *drain); err != nil {
			fatal(err)
		}
		return
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "vist: -dir is required")
		os.Exit(2)
	}
	var schema []string
	if *dtd != "" {
		f, err := os.Open(*dtd)
		if err != nil {
			fatal(err)
		}
		schema, err = xmltree.ParseDTD(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *dtd, err))
		}
	}
	opts := core.Options{Lambda: *lambda, Schema: schema, WALMaxBytes: *walMax, LegacyFormat: *legacyFormat}
	if cmd == "fsck" {
		// fsck owns the open (and, with -repair or -compact, replaces the
		// directory outright), so it runs before the common Open below.
		runFsck(*dir, opts, *repair, *compact)
		return
	}
	if cmd == "serve" || cmd == "replicate" {
		// Served queries come from untrusted clients: bound each one by
		// default. QueryCtx applies these index-level limits to every HTTP
		// request that doesn't carry its own tighter deadline.
		opts.DefaultQueryTimeout = *queryTimeout
		opts.DefaultBudget = core.Budget{MaxPages: *queryMaxPages}
	}
	if cmd == "serve" {
		opts.ScrubInterval = *scrub
		opts.ScrubPagesPerSecond = *scrubRate
	}
	if cmd == "serve" && *slowQuery > 0 {
		opts.SlowQueryThreshold = *slowQuery
		opts.SlowQueryLog = func(sq core.SlowQuery) {
			fmt.Fprintf(os.Stderr, "vist: slow query %q took %s (err=%v)\n%s\n",
				sq.Expr, sq.Duration.Round(time.Microsecond), sq.Err, sq.Stats.Explain())
		}
	}
	if cmd == "replicate" {
		// The replica opens its own index via OpenReplica (read-only, fed by
		// the leader's ship log), so it skips the common Open below.
		if *from == "" {
			fmt.Fprintln(os.Stderr, "vist: replicate requires -from URL")
			os.Exit(2)
		}
		if err := runReplicate(*dir, strings.TrimRight(*from, "/"), *addr, *metricsAddr, *poll, *drain, opts); err != nil {
			fatal(err)
		}
		return
	}
	if cmd == "serve" && shardedServe(*dir, *shards) {
		if *ship {
			fatal(fmt.Errorf("-ship requires a single-shard leader (run one serve -ship per shard and point replicas at each)"))
		}
		si, err := cluster.OpenSharded(*dir, *shards, opts)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := si.Close(); err != nil {
				fatal(err)
			}
		}()
		if err := runServe(si, cluster.MuxConfig{}, *addr, *metricsAddr, *drain); err != nil {
			fatal(err)
		}
		return
	}
	var muxCfg cluster.MuxConfig
	if cmd == "serve" && *ship {
		// The ship log must exist before Open so the recovery path can
		// re-ship any committed frames replayed from the WAL. On a fresh
		// leader the index directory doesn't exist yet either.
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		sl, err := cluster.OpenShipLog(filepath.Join(*dir, "shiplog"))
		if err != nil {
			fatal(err)
		}
		defer sl.Close()
		opts.WALShipper = sl.Append
		muxCfg.Ship = sl
	}
	ix, err := core.Open(*dir, opts)
	if err != nil {
		fatal(err)
	}
	if ix.Recovered() {
		info := ix.Recovery()
		fmt.Fprintf(os.Stderr, "vist: recovered from unclean shutdown (%d committed pages replayed, %d uncommitted records discarded)\n",
			info.PagesReplayed, info.FramesDiscarded)
	}
	defer func() {
		if err := ix.Close(); err != nil {
			fatal(err)
		}
	}()

	switch cmd {
	case "index":
		total := 0
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			docs, err := xmltree.ParseAll(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			for _, d := range docs {
				id, err := ix.Insert(d)
				if err != nil {
					fatal(fmt.Errorf("%s: %w", path, err))
				}
				total++
				_ = id
			}
		}
		fmt.Printf("indexed %d documents (%d total, %d suffix-tree nodes, %d bytes)\n",
			total, ix.DocCount(), ix.NodeCount(), ix.SizeBytes())
	case "query":
		if fs.NArg() != 1 {
			fatal(fmt.Errorf("query takes exactly one expression"))
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		budget := core.Budget{MaxResults: *maxResults}
		var ids []core.DocID
		var stats core.QueryStats
		if *verify {
			ids, stats, err = ix.QueryVerifiedCtx(ctx, fs.Arg(0), budget)
		} else {
			ids, stats, err = ix.QueryCtx(ctx, fs.Arg(0), budget)
		}
		if err != nil {
			// A deadline or budget cut-off is reported with the partial
			// progress made up to the stop, then a nonzero exit.
			if errors.Is(err, core.ErrCanceled) || errors.Is(err, core.ErrBudgetExceeded) {
				fmt.Fprintln(os.Stderr, "vist: query cut off:", err)
				fmt.Fprintln(os.Stderr, "vist: partial progress:", stats)
				os.Exit(1)
			}
			fatal(err)
		}
		if *explain {
			fmt.Fprintln(os.Stderr, stats.Explain())
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		fmt.Fprintf(os.Stderr, "%d documents\n", len(ids))
	case "get":
		id := parseID(fs.Arg(0))
		doc, err := ix.Get(core.DocID(id))
		if err != nil {
			fatal(err)
		}
		if err := xmltree.WriteXML(os.Stdout, doc); err != nil {
			fatal(err)
		}
	case "delete":
		id := parseID(fs.Arg(0))
		if err := ix.Delete(core.DocID(id)); err != nil {
			fatal(err)
		}
		fmt.Printf("deleted %d\n", id)
	case "stats":
		st := ix.StorageStats()
		fmt.Printf("documents:          %d\n", ix.DocCount())
		fmt.Printf("suffix-tree nodes:  %d\n", ix.NodeCount())
		fmt.Printf("max tree depth:     %d\n", ix.MaxTreeDepth())
		fmt.Printf("index bytes:        %d\n", ix.IndexSizeBytes())
		fmt.Printf("total bytes:        %d\n", st.TotalBytes)
		fmt.Printf("bytes per document: %.1f\n", st.BytesPerDoc)
		fmt.Printf("dictionary names:   %d\n", ix.Dict().Len())
		fmt.Printf("key format:         %s\n", st.KeyFormat)
		if st.KeyFormat == "interned" {
			fmt.Printf("interned paths:     %d\n", st.InternedPaths)
		}
		for _, f := range st.Files {
			fmt.Printf("  %-10s %d bytes\n", f.Name, f.Bytes)
		}
		if st.ColdEntries > 0 {
			fmt.Printf("cold pages:         %d (%d bytes compressed, %.2fx)\n",
				st.ColdEntries, st.ColdCompressedBytes,
				float64(st.ColdRawBytes)/float64(st.ColdCompressedBytes))
		}
	case "serve":
		if err := runServe(ix, muxCfg, *addr, *metricsAddr, *drain); err != nil {
			fatal(err)
		}
	case "export":
		if err := ix.ExportXML(os.Stdout); err != nil {
			fatal(err)
		}
	case "check":
		rep, err := ix.Check()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("nodes=%d docs=%d sequential=%d maxDepth=%d"+"\n",
			rep.Nodes, rep.Docs, rep.Sequential, rep.MaxDepthSeen)
		if rep.Ok() {
			fmt.Println("OK")
			return
		}
		for _, p := range rep.Problems {
			fmt.Println("PROBLEM:", p)
		}
		os.Exit(1)
	default:
		usage()
	}
}

// shardedServe reports whether serve should open dir as a sharded group:
// either the operator asked for shards explicitly, or the directory was
// created sharded (cluster.json records the shard count) and must not be
// reopened as a plain index.
func shardedServe(dir string, shards int) bool {
	if shards > 0 {
		return true
	}
	_, err := os.Stat(filepath.Join(dir, "cluster.json"))
	return err == nil
}

func parseID(s string) uint64 {
	id, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		fatal(fmt.Errorf("bad document ID %q", s))
	}
	return id
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vist:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: vist COMMAND -dir DIR [flags] [args]

commands:
  index   -dir DIR [-dtd FILE] [-lambda N] FILE...   index XML files
  query   -dir DIR [-verify] [-explain] [-timeout D] [-max-results N] 'EXPR'
  serve   -dir DIR [-addr A] [-metrics-addr A] [-slow-query D] [-query-timeout D] [-query-max-pages N]
          [-drain D] [-scrub D] [-scrub-rate N] [-wal-max-bytes N] [-shards N] [-ship]
  serve   -router -backends URL,URL,... [-addr A] [-hedge D]    scatter-gather router over shard servers
  replicate -dir DIR -from URL [-addr A] [-poll D]   WAL-shipped read-only replica of a -ship leader
  get     -dir DIR ID                                print a stored document
  delete  -dir DIR ID                                remove a document
  stats   -dir DIR                                   show index statistics
  check   -dir DIR                                   verify structural invariants
  fsck    -dir DIR [-repair] [-compact]              offline verify; -repair rebuilds from the document store,
                                                     -compact rewrites into the current storage format
  export  -dir DIR                                   dump all stored documents`)
	os.Exit(2)
}
