package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"time"

	"vist/internal/core"
	"vist/internal/query"
)

// queryResponse is the JSON body of every /query reply that ran (or partially
// ran) a query. On a budget or deadline cut-off the handler still returns it —
// with Partial set and the IDs/stats reflecting the progress made before the
// stop — so clients can distinguish "no matches" from "gave up early".
type queryResponse struct {
	IDs     []core.DocID    `json:"ids"`
	Stats   core.QueryStats `json:"stats"`
	Partial bool            `json:"partial,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// newQueryMux builds the query-port handler. Split from runServe so tests can
// drive it through net/http/httptest without binding a socket.
//
// Budgeting note: the handler passes a zero per-call Budget, which QueryCtx
// merges with the index's Options.DefaultBudget, and QueryCtx itself applies
// Options.DefaultQueryTimeout when the request context carries no deadline —
// so the index-level limits configured at Open time bound every HTTP query
// without any handler-side plumbing. The ?timeout= parameter tightens (or,
// absent index defaults, introduces) the deadline for one request.
func newQueryMux(ix *core.Index) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		expr := r.URL.Query().Get("q")
		if expr == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		// Classify malformed expressions up front: a request the parser
		// rejects is the client's fault, never a server error.
		if _, err := query.Parse(expr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if t := r.URL.Query().Get("timeout"); t != "" {
			d, err := time.ParseDuration(t)
			if err != nil || d <= 0 {
				http.Error(w, "bad timeout: "+t, http.StatusBadRequest)
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		var (
			ids   []core.DocID
			stats core.QueryStats
			err   error
		)
		if r.URL.Query().Get("verify") != "" {
			ids, stats, err = ix.QueryVerifiedCtx(ctx, expr, core.Budget{})
		} else {
			ids, stats, err = ix.QueryCtx(ctx, expr, core.Budget{})
		}
		resp := queryResponse{IDs: ids, Stats: stats}
		if ids == nil {
			resp.IDs = []core.DocID{} // JSON [] — absent results are partial, not null
		}
		status := http.StatusOK
		if err != nil {
			resp.Error = err.Error()
			switch {
			case errors.Is(err, core.ErrCanceled):
				// Deadline or client disconnect: the work done so far is
				// still reported alongside the distinct status.
				status = http.StatusGatewayTimeout
				resp.Partial = true
			case errors.Is(err, core.ErrBudgetExceeded):
				status = http.StatusTooManyRequests
				resp.Partial = true
			default:
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// runServe exposes an index over HTTP: a small query API on addr, and — when
// metricsAddr is non-empty — the operational surface (plain-text /metrics,
// expvar's /debug/vars carrying the metrics snapshot, and net/http/pprof) on
// a separate listener so profiling endpoints are never reachable through the
// query port.
func runServe(ix *core.Index, addr, metricsAddr string) error {
	if metricsAddr != "" {
		expvar.Publish("vist.metrics", expvar.Func(func() any { return ix.Metrics() }))
		// expvar and net/http/pprof register themselves on the default mux;
		// /metrics joins them there.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			ix.Metrics().WriteText(w)
		})
		go func() {
			fmt.Fprintf(os.Stderr, "vist: metrics on http://%s/metrics (expvar: /debug/vars, pprof: /debug/pprof/)\n", metricsAddr)
			if err := http.ListenAndServe(metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "vist: metrics server:", err)
				os.Exit(1)
			}
		}()
	}
	fmt.Fprintf(os.Stderr, "vist: query API on http://%s/query?q=EXPR\n", addr)
	return http.ListenAndServe(addr, newQueryMux(ix))
}
