package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"time"

	"vist/internal/core"
)

// runServe exposes an index over HTTP: a small query API on addr, and — when
// metricsAddr is non-empty — the operational surface (plain-text /metrics,
// expvar's /debug/vars carrying the metrics snapshot, and net/http/pprof) on
// a separate listener so profiling endpoints are never reachable through the
// query port.
func runServe(ix *core.Index, addr, metricsAddr string) error {
	if metricsAddr != "" {
		expvar.Publish("vist.metrics", expvar.Func(func() any { return ix.Metrics() }))
		// expvar and net/http/pprof register themselves on the default mux;
		// /metrics joins them there.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			ix.Metrics().WriteText(w)
		})
		go func() {
			fmt.Fprintf(os.Stderr, "vist: metrics on http://%s/metrics (expvar: /debug/vars, pprof: /debug/pprof/)\n", metricsAddr)
			if err := http.ListenAndServe(metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "vist: metrics server:", err)
				os.Exit(1)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		expr := r.URL.Query().Get("q")
		if expr == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if t := r.URL.Query().Get("timeout"); t != "" {
			d, err := time.ParseDuration(t)
			if err != nil {
				http.Error(w, "bad timeout: "+err.Error(), http.StatusBadRequest)
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		var (
			ids   []core.DocID
			stats core.QueryStats
			err   error
		)
		if r.URL.Query().Get("verify") != "" {
			ids, stats, err = ix.QueryVerifiedCtx(ctx, expr, core.Budget{})
		} else {
			ids, stats, err = ix.QueryCtx(ctx, expr, core.Budget{})
		}
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, core.ErrCanceled):
				status = http.StatusGatewayTimeout
			case errors.Is(err, core.ErrBudgetExceeded):
				status = http.StatusTooManyRequests
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"ids": ids, "stats": stats})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	fmt.Fprintf(os.Stderr, "vist: query API on http://%s/query?q=EXPR\n", addr)
	return http.ListenAndServe(addr, mux)
}
