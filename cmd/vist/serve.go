package main

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"vist/internal/cluster"
	"vist/internal/core"
)

// newQueryMux builds the query-port handler over any core.Shard — a single
// index, an in-process sharded group, or a WAL-shipped replica. Kept as a
// thin wrapper over cluster.QueryMux so the serve tests exercise exactly
// what runServe mounts.
func newQueryMux(s core.Shard, cfg cluster.MuxConfig) *http.ServeMux {
	return cluster.QueryMux(s, cfg)
}

// serveMetrics mounts the operational surface (plain-text /metrics, expvar's
// /debug/vars carrying the metrics snapshot, and net/http/pprof) on its own
// listener so profiling endpoints are never reachable through the query
// port.
func serveMetrics(metricsAddr string, snapshot func() any, writeText func(w io.Writer)) {
	expvar.Publish("vist.metrics", expvar.Func(snapshot))
	// expvar and net/http/pprof register themselves on the default mux;
	// /metrics joins them there.
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeText(w)
	})
	go func() {
		fmt.Fprintf(os.Stderr, "vist: metrics on http://%s/metrics (expvar: /debug/vars, pprof: /debug/pprof/)\n", metricsAddr)
		if err := http.ListenAndServe(metricsAddr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "vist: metrics server:", err)
			os.Exit(1)
		}
	}()
}

// runHTTP runs handler on addr with signal-based graceful shutdown: SIGINT
// or SIGTERM closes the listener, in-flight requests get up to drain to
// finish (http.Server.Shutdown), and runHTTP returns so the caller can close
// the index — which itself drains pinned readers before touching files.
// ready (may be nil) flips true once the listener is up. banner is logged at
// start.
func runHTTP(addr, banner string, handler http.Handler, ready *atomic.Bool, drain time.Duration) error {
	srv := &http.Server{Addr: addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintln(os.Stderr, banner)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	// WAL recovery ran inside Open, before the caller built the handler;
	// with the listener up the process is ready.
	if ready != nil {
		ready.Store(true)
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // a second signal now kills the process the default way
		if drain <= 0 {
			drain = 30 * time.Second
		}
		fmt.Fprintf(os.Stderr, "vist: shutting down (draining up to %s)\n", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return <-errc
	}
}

// runServe exposes a Shard (single index, sharded group, or replica) over
// HTTP: the query API on addr and, when metricsAddr is non-empty, the
// operational surface on a separate listener.
func runServe(s core.Shard, cfg cluster.MuxConfig, addr, metricsAddr string, drain time.Duration) error {
	if metricsAddr != "" {
		serveMetrics(metricsAddr,
			func() any { return s.Metrics() },
			func(w io.Writer) { s.Metrics().WriteText(w) })
	}
	var ready atomic.Bool
	cfg.Ready = &ready
	banner := fmt.Sprintf("vist: query API on http://%s/query?q=EXPR", addr)
	return runHTTP(addr, banner, newQueryMux(s, cfg), &ready, drain)
}

// runRouter exposes the scatter-gather router over HTTP. The router is
// stateless apart from its docID allocator, which Init seeds from the
// backends before the listener opens.
func runRouter(addr, metricsAddr string, backends []string, hedge time.Duration, drain time.Duration) error {
	rt := cluster.NewRouter(backends, hedge)
	// Backends and router typically start together (systemd units, a CI
	// harness, docker-compose), so a refused connection at startup is
	// ordinary, not fatal: retry Init until the deadline.
	initCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		err := rt.Init(initCtx)
		if err == nil {
			break
		}
		select {
		case <-initCtx.Done():
			return err
		case <-time.After(250 * time.Millisecond):
			fmt.Fprintln(os.Stderr, "vist: router init:", err, "(retrying)")
		}
	}
	if metricsAddr != "" {
		serveMetrics(metricsAddr,
			func() any { return rt.Metrics() },
			func(w io.Writer) { rt.Metrics().WriteText(w) })
	}
	banner := fmt.Sprintf("vist: router on http://%s/query?q=EXPR over %d backends (hedge %s)", addr, len(backends), hedge)
	return runHTTP(addr, banner, rt.Handler(), nil, drain)
}

// runReplicate opens a WAL-shipped follower of the leader at fromURL,
// starts the poll loop, and serves read-only queries.
func runReplicate(dir, fromURL, addr, metricsAddr string, poll, drain time.Duration, opts core.Options) error {
	rep, err := cluster.OpenReplica(dir, fromURL, opts)
	if err != nil {
		return err
	}
	defer rep.Close()
	pollCtx, stopPoll := context.WithCancel(context.Background())
	defer stopPoll()
	// One synchronous poll before serving, so a fresh follower that can
	// reach its leader comes up already converged rather than empty.
	if _, err := rep.Poll(pollCtx); err != nil {
		fmt.Fprintln(os.Stderr, "vist: replicate: initial poll:", err, "(will keep retrying)")
	}
	go rep.Run(pollCtx, poll)
	if metricsAddr != "" {
		serveMetrics(metricsAddr,
			func() any { return rep.Metrics() },
			func(w io.Writer) { rep.Metrics().WriteText(w) })
	}
	var ready atomic.Bool
	banner := fmt.Sprintf("vist: replica of %s serving read-only on http://%s/query?q=EXPR (poll %s)", fromURL, addr, poll)
	return runHTTP(addr, banner, newQueryMux(rep, cluster.MuxConfig{Ready: &ready, Replica: rep}), &ready, drain)
}
