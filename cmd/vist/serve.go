package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"vist/internal/core"
	"vist/internal/query"
)

// queryResponse is the JSON body of every /query reply that ran (or partially
// ran) a query. On a budget or deadline cut-off the handler still returns it —
// with Partial set and the IDs/stats reflecting the progress made before the
// stop — so clients can distinguish "no matches" from "gave up early".
type queryResponse struct {
	IDs     []core.DocID    `json:"ids"`
	Stats   core.QueryStats `json:"stats"`
	Partial bool            `json:"partial,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// healthResponse is the JSON body of /healthz. While the index is degraded
// (read-only after a write-path failure) the endpoint serves 503 with the
// cause, so load balancers stop routing writes while dashboards still see
// why.
type healthResponse struct {
	Status string `json:"status"` // "ok" or "degraded"
	Op     string `json:"op,omitempty"`
	Reason string `json:"reason,omitempty"`
	Since  string `json:"since,omitempty"`
}

// newQueryMux builds the query-port handler. Split from runServe so tests can
// drive it through net/http/httptest without binding a socket. ready gates
// /readyz: it flips true once startup (including WAL recovery, which Open
// performs before returning the index) has finished; nil means always ready.
//
// Budgeting note: the handler passes a zero per-call Budget, which QueryCtx
// merges with the index's Options.DefaultBudget, and QueryCtx itself applies
// Options.DefaultQueryTimeout when the request context carries no deadline —
// so the index-level limits configured at Open time bound every HTTP query
// without any handler-side plumbing. The ?timeout= parameter tightens (or,
// absent index defaults, introduces) the deadline for one request.
func newQueryMux(ix *core.Index, ready *atomic.Bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		expr := r.URL.Query().Get("q")
		if expr == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		// Classify malformed expressions up front: a request the parser
		// rejects is the client's fault, never a server error.
		if _, err := query.Parse(expr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if t := r.URL.Query().Get("timeout"); t != "" {
			d, err := time.ParseDuration(t)
			if err != nil || d <= 0 {
				http.Error(w, "bad timeout: "+t, http.StatusBadRequest)
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		var (
			ids   []core.DocID
			stats core.QueryStats
			err   error
		)
		if r.URL.Query().Get("verify") != "" {
			ids, stats, err = ix.QueryVerifiedCtx(ctx, expr, core.Budget{})
		} else {
			ids, stats, err = ix.QueryCtx(ctx, expr, core.Budget{})
		}
		resp := queryResponse{IDs: ids, Stats: stats}
		if ids == nil {
			resp.IDs = []core.DocID{} // JSON [] — absent results are partial, not null
		}
		status := http.StatusOK
		if err != nil {
			resp.Error = err.Error()
			switch {
			case errors.Is(err, core.ErrCanceled):
				// Deadline or client disconnect: the work done so far is
				// still reported alongside the distinct status.
				status = http.StatusGatewayTimeout
				resp.Partial = true
			case errors.Is(err, core.ErrBudgetExceeded):
				status = http.StatusTooManyRequests
				resp.Partial = true
			default:
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if d := ix.Degraded(); d != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(healthResponse{
				Status: "degraded",
				Op:     d.Op,
				Reason: d.Cause.Error(),
				Since:  d.At.UTC().Format(time.RFC3339),
			})
			return
		}
		json.NewEncoder(w).Encode(healthResponse{Status: "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if ready != nil && !ready.Load() {
			http.Error(w, "starting: WAL recovery in progress", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// runServe exposes an index over HTTP: a small query API on addr, and — when
// metricsAddr is non-empty — the operational surface (plain-text /metrics,
// expvar's /debug/vars carrying the metrics snapshot, and net/http/pprof) on
// a separate listener so profiling endpoints are never reachable through the
// query port.
//
// SIGINT or SIGTERM shuts the server down gracefully: the listener closes,
// in-flight requests get up to drain to finish (http.Server.Shutdown), and
// runServe returns so the caller can Close the index — which itself drains
// pinned readers under Options.CloseDrainTimeout before touching files.
func runServe(ix *core.Index, addr, metricsAddr string, drain time.Duration) error {
	if metricsAddr != "" {
		expvar.Publish("vist.metrics", expvar.Func(func() any { return ix.Metrics() }))
		// expvar and net/http/pprof register themselves on the default mux;
		// /metrics joins them there.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			ix.Metrics().WriteText(w)
		})
		go func() {
			fmt.Fprintf(os.Stderr, "vist: metrics on http://%s/metrics (expvar: /debug/vars, pprof: /debug/pprof/)\n", metricsAddr)
			if err := http.ListenAndServe(metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "vist: metrics server:", err)
				os.Exit(1)
			}
		}()
	}
	var ready atomic.Bool
	srv := &http.Server{Addr: addr, Handler: newQueryMux(ix, &ready)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "vist: query API on http://%s/query?q=EXPR\n", addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	// WAL recovery ran inside Open, before this index existed; with the
	// listener up the process is ready.
	ready.Store(true)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // a second signal now kills the process the default way
		if drain <= 0 {
			drain = 30 * time.Second
		}
		fmt.Fprintf(os.Stderr, "vist: shutting down (draining up to %s)\n", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return <-errc
	}
}
