package main

import (
	"fmt"
	"os"

	"vist/internal/core"
)

// runFsck verifies an index directory offline, optionally rebuilding it from
// the document store first (-repair) or rewriting it into the current
// storage format (-compact). Exit status: 0 when the index verifies clean
// (and, for -repair, no documents were lost), 1 otherwise.
func runFsck(dir string, opts core.Options, repair, compact bool) {
	lossy := false
	if repair {
		rep, err := core.Repair(dir, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rebuilt %s from its document store: %d documents salvaged\n", dir, rep.DocsSalvaged)
		fmt.Printf("previous index preserved at %s\n", rep.BackupDir)
		if rep.SkippedSubtrees > 0 {
			fmt.Printf("skipped %d corrupt store subtrees\n", rep.SkippedSubtrees)
			lossy = true
		}
		if len(rep.DocsLost) > 0 {
			fmt.Printf("%d documents unrecoverable:", len(rep.DocsLost))
			for _, id := range rep.DocsLost {
				fmt.Printf(" %d", id)
			}
			fmt.Println()
			lossy = true
		}
		for _, n := range rep.Notes {
			fmt.Println("note:", n)
		}
	}
	if compact {
		rep, err := core.Compact(dir, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("compacted %s: %d nodes, %d doc entries, %d store chunks rewritten\n",
			dir, rep.Nodes, rep.Docs, rep.StoreChunks)
		fmt.Printf("bytes: %d -> %d (%.2fx)\n", rep.BytesBefore, rep.BytesAfter,
			float64(rep.BytesBefore)/float64(max64(rep.BytesAfter, 1)))
		fmt.Printf("previous index preserved at %s\n", rep.BackupDir)
	}

	rep, err := core.Fsck(dir, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vist: fsck:", err)
		if !repair {
			fmt.Fprintln(os.Stderr, "vist: the index cannot be opened; -repair rebuilds it from the document store")
		}
		os.Exit(1)
	}
	if rep.Recovery.Replayed {
		fmt.Printf("write-ahead log: replayed %d committed pages, discarded %d uncommitted records\n",
			rep.Recovery.PagesReplayed, rep.Recovery.FramesDiscarded)
	}
	fmt.Printf("pages: %d verified, %d not yet flushed\n", rep.Scrub.PagesChecked, rep.Scrub.PagesSkipped)
	fmt.Printf("structure: %d nodes, %d doc entries, %d documents decoded\n",
		rep.Structure.Nodes, rep.Structure.Docs, rep.Docs)
	for _, p := range rep.Scrub.Corrupt {
		fmt.Println("CORRUPT:", p)
	}
	for _, p := range rep.Structure.Problems {
		fmt.Println("PROBLEM:", p)
	}
	for _, p := range rep.Unreadable {
		fmt.Println("UNREADABLE:", p)
	}
	if !rep.Ok() {
		fmt.Fprintln(os.Stderr, "vist: index has problems; -repair rebuilds it from the document store")
		os.Exit(1)
	}
	fmt.Println("OK")
	if lossy {
		os.Exit(1)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
