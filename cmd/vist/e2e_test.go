package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"syscall"
	"testing"
	"time"

	"vist/internal/cluster"
	"vist/internal/gen"
	"vist/internal/naive"
	"vist/internal/xmltree"
)

// TestClusterE2E is the cluster integration test: it builds the vist binary,
// launches N shard servers, a scatter-gather router over them, and a
// WAL-shipped follower of shard 0 — all as real processes talking real HTTP —
// ingests a generated DBLP corpus through the router, and diffs every query
// against the in-process naive oracle. It runs only when VIST_CLUSTER_E2E=1
// (the CI cluster job sets it); VIST_E2E_SHARDS picks the shard count
// (default 3).
func TestClusterE2E(t *testing.T) {
	if os.Getenv("VIST_CLUSTER_E2E") != "1" {
		t.Skip("set VIST_CLUSTER_E2E=1 to run the real-process cluster test")
	}
	shards := 3
	if s := os.Getenv("VIST_E2E_SHARDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad VIST_E2E_SHARDS=%q", s)
		}
		shards = n
	}

	bin := filepath.Join(t.TempDir(), "vist")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building vist: %v", err)
	}

	// Shard servers. Shard 0 is also the -ship leader the follower tails.
	work := t.TempDir()
	backendURLs := make([]string, shards)
	for i := 0; i < shards; i++ {
		addr := freeAddr(t)
		backendURLs[i] = "http://" + addr
		args := []string{"serve",
			"-dir", filepath.Join(work, fmt.Sprintf("shard%d", i)),
			"-addr", addr, "-drain", "2s"}
		if i == 0 {
			args = append(args, "-ship")
		}
		startProc(t, bin, args...)
	}
	// One more process: the in-process sharded mode (`serve -shards N`),
	// fed the same corpus directly — its results must also match the oracle.
	shardedAddr := freeAddr(t)
	startProc(t, bin, "serve",
		"-dir", filepath.Join(work, "sharded"),
		"-shards", strconv.Itoa(shards),
		"-addr", shardedAddr, "-drain", "2s")
	shardedURL := "http://" + shardedAddr

	routerAddr := freeAddr(t)
	startProc(t, bin, "serve", "-router",
		"-backends", joinCSV(backendURLs),
		"-addr", routerAddr, "-hedge", "50ms", "-drain", "2s")
	followerAddr := freeAddr(t)
	startProc(t, bin, "replicate",
		"-dir", filepath.Join(work, "follower"),
		"-from", backendURLs[0],
		"-addr", followerAddr, "-poll", "100ms", "-drain", "2s")
	routerURL := "http://" + routerAddr
	followerURL := "http://" + followerAddr

	for _, u := range backendURLs {
		waitReady(t, u+"/readyz")
	}
	waitReady(t, shardedURL+"/readyz")
	waitReady(t, routerURL+"/readyz")
	waitReady(t, followerURL+"/readyz")

	// Ingest through the router; the oracle sees the same documents in the
	// same order, so document IDs line up (both allocate 1, 2, 3, …).
	docs := gen.DBLP(gen.DBLPConfig{Records: 150, Seed: 5})
	oracle := naive.New(nil)
	for i, d := range docs {
		var buf bytes.Buffer
		if err := xmltree.WriteXML(&buf, d); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(routerURL+"/insert", "application/xml", &buf)
		if err != nil {
			t.Fatal(err)
		}
		var ir cluster.InsertResponse
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: %d %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatal(err)
		}
		if want := oracle.Insert(d); uint64(ir.ID) != want {
			t.Fatalf("insert %d: router assigned %d, oracle %d", i, ir.ID, want)
		}
		buf.Reset()
		if err := xmltree.WriteXML(&buf, d); err != nil {
			t.Fatal(err)
		}
		sresp, err := http.Post(shardedURL+"/insert", "application/xml", &buf)
		if err != nil {
			t.Fatal(err)
		}
		var sir cluster.InsertResponse
		sbody, _ := io.ReadAll(sresp.Body)
		sresp.Body.Close()
		if sresp.StatusCode != http.StatusOK || json.Unmarshal(sbody, &sir) != nil || sir.ID != ir.ID {
			t.Fatalf("sharded serve insert %d: %d %s (router assigned %d)", i, sresp.StatusCode, sbody, ir.ID)
		}
	}

	queries := []string{
		"//inproceedings/author",
		"//author",
		"/article/year",
		"//title",
		"/inproceedings/booktitle",
		fmt.Sprintf("//author[text()='%s']", gen.DBLPDavid),
		"/book/*",
		"//*/year",
		"/phdthesis//author",
		"/nosuch/path",
	}
	for _, q := range queries {
		want, err := oracle.Query(q)
		if err != nil {
			t.Fatalf("oracle %q: %v", q, err)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if got := queryIDs(t, routerURL, q); !equalIDs(got, want) {
			t.Errorf("query %q: router %v, oracle %v", q, got, want)
		}
		if got := queryIDs(t, shardedURL, q); !equalIDs(got, want) {
			t.Errorf("query %q: sharded serve %v, oracle %v", q, got, want)
		}
	}

	// Deletes route to the owning shard; the oracle has no delete, so the
	// expectation is its result set minus the removed IDs.
	deleted := map[uint64]bool{}
	for id := uint64(3); id <= uint64(len(docs)); id += 7 {
		req, _ := http.NewRequest(http.MethodDelete,
			fmt.Sprintf("%s/delete?id=%d", routerURL, id), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete %d: %d", id, resp.StatusCode)
		}
		deleted[id] = true
	}
	for _, q := range queries {
		got := queryIDs(t, routerURL, q)
		all, err := oracle.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		var want []uint64
		for _, id := range all {
			if !deleted[id] {
				want = append(want, id)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !equalIDs(got, want) {
			t.Errorf("after deletes, query %q: router %v, want %v", q, got, want)
		}
	}

	// The follower tails shard 0's ship log. Its own lag gauge can read zero
	// against a stale leader-size sample, so "caught up" is judged against
	// the leader's authoritative log size, taken after the last mutation was
	// acknowledged. Once there, it must serve exactly the leader's document
	// set and still refuse writes.
	waitCaughtUp(t, followerURL, shipSize(t, backendURLs[0]))
	for _, q := range queries {
		leader := queryIDs(t, backendURLs[0], q)
		follower := queryIDs(t, followerURL, q)
		if !equalIDs(follower, leader) {
			t.Errorf("follower %q: %v, leader has %v", q, follower, leader)
		}
	}
	resp, err := http.Post(followerURL+"/insert", "application/xml",
		bytes.NewReader([]byte("<r/>")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower accepted a write: %d", resp.StatusCode)
	}
}

// startProc launches the vist binary and guarantees teardown: SIGTERM first
// (exercising the graceful drain path), SIGKILL if it lingers.
func startProc(t *testing.T, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %v: %v", args, err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func joinCSV(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", url)
}

// shipSize asks the leader for its current ship-log end (the X-Ship-Size
// header every /wal/ship response carries). With all mutations acknowledged
// — and acks imply commit + ship — this is the replication high-water mark.
func shipSize(t *testing.T, leaderURL string) int64 {
	t.Helper()
	resp, err := http.Get(leaderURL + "/wal/ship?from=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	size, err := strconv.ParseInt(resp.Header.Get("X-Ship-Size"), 10, 64)
	if err != nil {
		t.Fatalf("leader sent bad X-Ship-Size: %v", err)
	}
	return size
}

// waitCaughtUp polls the follower's /status until its applied offset reaches
// the leader's ship-log high-water mark.
func waitCaughtUp(t *testing.T, followerURL string, target int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(followerURL + "/status")
		if err == nil {
			var st cluster.StatusResponse
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if json.Unmarshal(body, &st) == nil && st.Replica != nil &&
				st.Replica.Offset >= target {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("follower never reached leader ship offset %d", target)
}

func queryIDs(t *testing.T, base, expr string) []uint64 {
	t.Helper()
	resp, err := http.Get(base + "/query?q=" + url.QueryEscape(expr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %q against %s: %d %s", expr, base, resp.StatusCode, body)
	}
	var qr cluster.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, len(qr.IDs))
	for i, id := range qr.IDs {
		ids[i] = uint64(id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
