package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vist/internal/btree"
	"vist/internal/cluster"
	"vist/internal/core"
	"vist/internal/xmltree"
)

// openServeIndex builds a small file-backed index the way the serve command
// would open it, with the caller's Options standing in for the serve flags.
func openServeIndex(t *testing.T, opts core.Options, xmls ...string) *core.Index {
	t.Helper()
	ix, err := core.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := ix.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	for _, x := range xmls {
		doc, err := xmltree.ParseString(x)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func serveGet(t *testing.T, mux *http.ServeMux, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

func decodeQueryResponse(t *testing.T, rec *httptest.ResponseRecorder) cluster.QueryResponse {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var resp cluster.QueryResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	return resp
}

func TestServeQueryOK(t *testing.T) {
	ix := openServeIndex(t, core.Options{},
		"<a><b>x</b></a>", "<a><c>y</c></a>", "<a><b>z</b></a>")
	mux := newQueryMux(ix, cluster.MuxConfig{})

	rec := serveGet(t, mux, "/query?q=/a/b")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %q", rec.Code, rec.Body)
	}
	resp := decodeQueryResponse(t, rec)
	if len(resp.IDs) != 2 || resp.Partial || resp.Error != "" {
		t.Fatalf("response = %+v, want 2 ids, complete, no error", resp)
	}

	rec = serveGet(t, mux, "/query?q=/a/b&verify=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("verified status = %d, body %q", rec.Code, rec.Body)
	}
	if resp := decodeQueryResponse(t, rec); len(resp.IDs) != 2 {
		t.Fatalf("verified response = %+v, want 2 ids", resp)
	}

	// Zero matches must serialize as [], not null: clients distinguish an
	// empty result from a cut-off by Partial, not by a missing array.
	rec = serveGet(t, mux, "/query?q=/nope")
	if rec.Code != http.StatusOK {
		t.Fatalf("empty-result status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"ids":[]`) {
		t.Fatalf("empty result body = %q, want \"ids\":[]", rec.Body)
	}

	if rec := serveGet(t, mux, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rec.Code)
	}
}

// TestServeQueryBadRequest: every malformed request — absent expression,
// syntax the parser rejects, unparsable or non-positive timeout — is the
// client's fault and must map to 400, never 500.
func TestServeQueryBadRequest(t *testing.T) {
	ix := openServeIndex(t, core.Options{}, "<a><b>x</b></a>")
	mux := newQueryMux(ix, cluster.MuxConfig{})
	for _, target := range []string{
		"/query",
		"/query?q=%2Fa%5B",       // "/a[" — unterminated predicate
		"/query?q=not-a-path%21", // "not-a-path!"
		"/query?q=/a/b&timeout=bogus",
		"/query?q=/a/b&timeout=-1s",
	} {
		if rec := serveGet(t, mux, target); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status = %d, want 400 (body %q)", target, rec.Code, rec.Body)
		}
	}
}

// TestServeQueryBudgetExceeded: an index opened with a DefaultBudget (as the
// serve command's -query-max-pages flag does) must cut HTTP queries off with
// 429 and still deliver the partial stats in the JSON body.
func TestServeQueryBudgetExceeded(t *testing.T) {
	docs := make([]string, 40)
	for i := range docs {
		docs[i] = fmt.Sprintf("<a><b>v%d</b><c>w%d</c></a>", i, i)
	}
	ix := openServeIndex(t, core.Options{DefaultBudget: core.Budget{MaxPages: 1}}, docs...)
	mux := newQueryMux(ix, cluster.MuxConfig{})

	rec := serveGet(t, mux, "/query?q=//b")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %q)", rec.Code, rec.Body)
	}
	resp := decodeQueryResponse(t, rec)
	if !resp.Partial || resp.Error == "" {
		t.Fatalf("response = %+v, want partial with error text", resp)
	}
	if resp.Stats.PagesRead == 0 {
		t.Fatalf("cut-off response carries no progress stats: %+v", resp.Stats)
	}
}

// TestServeQueryDeadline: both the index-level DefaultQueryTimeout (the serve
// command's -query-timeout flag) and a per-request ?timeout= must map a
// deadline cut-off to 504 with the partial stats in the body.
func TestServeQueryDeadline(t *testing.T) {
	ix := openServeIndex(t, core.Options{DefaultQueryTimeout: time.Nanosecond},
		"<a><b>x</b></a>")
	rec := serveGet(t, newQueryMux(ix, cluster.MuxConfig{}), "/query?q=//b")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("DefaultQueryTimeout status = %d, want 504 (body %q)", rec.Code, rec.Body)
	}
	if resp := decodeQueryResponse(t, rec); !resp.Partial || resp.Error == "" {
		t.Fatalf("response = %+v, want partial with error text", resp)
	}

	ix2 := openServeIndex(t, core.Options{}, "<a><b>x</b></a>")
	rec = serveGet(t, newQueryMux(ix2, cluster.MuxConfig{}), "/query?q=//b&timeout=1ns")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("?timeout=1ns status = %d, want 504 (body %q)", rec.Code, rec.Body)
	}
}

// TestServeHealthzDegraded: once the index flips into read-only degradation
// (here: the disk fills mid-insert), /healthz turns 503 with a JSON body
// naming the failed operation and cause — and recovers to 200 after Heal.
// Queries keep answering 200 throughout.
func TestServeHealthzDegraded(t *testing.T) {
	plan := &btree.FaultPlan{NoSpaceAfter: 48 * 1024}
	ix, err := core.Open(t.TempDir(), core.Options{
		PageSize: 512, CachePages: 4, FS: btree.FaultFS{Plan: plan},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		plan.AddSpace(1 << 20)
		if err := ix.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	for i := 0; i < 500 && ix.Degraded() == nil; i++ {
		doc, perr := xmltree.ParseString(fmt.Sprintf("<a><b>doc %d</b></a>", i))
		if perr != nil {
			t.Fatal(perr)
		}
		if _, err := ix.Insert(doc); err != nil {
			break
		}
		if i%5 == 4 {
			if err := ix.Sync(); err != nil {
				break
			}
		}
	}
	if ix.Degraded() == nil {
		t.Fatal("index never degraded; NoSpaceAfter budget too large for the workload")
	}
	mux := newQueryMux(ix, cluster.MuxConfig{})

	rec := serveGet(t, mux, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz status = %d, want 503 (body %q)", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("degraded /healthz Content-Type = %q", ct)
	}
	var h cluster.HealthResponse
	if err := json.NewDecoder(rec.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Op == "" || h.Reason == "" || h.Since == "" {
		t.Fatalf("degraded /healthz body = %+v, want status/op/reason/since populated", h)
	}

	// The query path is unaffected: reads serve the last published snapshot.
	if rec := serveGet(t, mux, "/query?q=/a/b"); rec.Code != http.StatusOK {
		t.Fatalf("degraded /query status = %d, want 200", rec.Code)
	}

	plan.AddSpace(1 << 20)
	if err := ix.Heal(); err != nil {
		t.Fatalf("Heal after freeing space: %v", err)
	}
	rec = serveGet(t, mux, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healed /healthz status = %d, want 200 (body %q)", rec.Code, rec.Body)
	}
}

// TestServeReadyz: /readyz answers 503 until the server marks itself ready
// (startup, including WAL recovery, complete) and 200 afterwards; a nil
// gate means always ready.
func TestServeReadyz(t *testing.T) {
	ix := openServeIndex(t, core.Options{}, "<a><b>x</b></a>")
	var ready atomic.Bool
	mux := newQueryMux(ix, cluster.MuxConfig{Ready: &ready})

	if rec := serveGet(t, mux, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-ready /readyz status = %d, want 503", rec.Code)
	}
	ready.Store(true)
	if rec := serveGet(t, mux, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("ready /readyz status = %d, want 200", rec.Code)
	}
	if rec := serveGet(t, newQueryMux(ix, cluster.MuxConfig{}), "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("nil-gate /readyz status = %d, want 200", rec.Code)
	}
}
