package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference file (BENCH_BASELINE.json at the repo
// root). Medians per benchmark metric, with the sample count recorded so a
// reader can judge how trustworthy each figure is.
type Baseline struct {
	Generated  string           `json:"generated"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry holds one gated figure. The value field keeps its historical
// "ns_per_op" JSON name for baseline compatibility, but for custom metrics
// (Unit != "") it is that metric's median — e.g. bytes/doc — not a time.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
	Samples int     `json:"samples"`
	Unit    string  `json:"unit,omitempty"`
}

// benchLine matches standard testing-package benchmark output, e.g.
//
//	BenchmarkQuery-8   	     100	  12005463 ns/op
//	BenchmarkInsert    	    5000	    240531 ns/op	  1024 B/op	  12 allocs/op
//	BenchmarkStorage   	       1	   9912345 ns/op	   532.1 bytes/doc
//
// The remainder of the line is parsed as (value, unit) pairs so custom
// b.ReportMetric figures gate alongside ns/op. The GOMAXPROCS suffix is
// stripped so results stay comparable across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.+)$`)

// metricKey names one gated figure in the results and baseline maps: the bare
// benchmark name for ns/op, "Name [unit]" for custom metrics.
func metricKey(bench, unit string) string {
	if unit == "ns/op" {
		return bench
	}
	return bench + " [" + unit + "]"
}

// unitOf recovers the unit from a metric key ("ns/op" for bare names).
func unitOf(key string) string {
	if i := strings.LastIndex(key, " ["); i >= 0 && strings.HasSuffix(key, "]") {
		return key[i+2 : len(key)-1]
	}
	return "ns/op"
}

// parseBench collects every metric sample per (suffix-stripped) benchmark name
// from go test -bench output. Repetitions from -count N land in the same
// slice. ns/op keeps the bare benchmark name; custom b.ReportMetric units are
// keyed "Name [unit]". The -benchmem figures (B/op, allocs/op) are skipped —
// they are per-iteration noise, not gated metrics.
func parseBench(r io.Reader) (map[string][]float64, error) {
	out := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := stripProcs(m[1])
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			unit := fields[i+1]
			if unit == "B/op" || unit == "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
			}
			// A zero, NaN, or infinite sample means the bench output is
			// corrupt (a benchmark cannot take no time, and a zero custom
			// metric reports nothing worth gating); letting it through would
			// poison the median and silently disable the gate.
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("line %q: invalid %s sample %v", sc.Text(), unit, v)
			}
			out[metricKey(name, unit)] = append(out[metricKey(name, unit)], v)
		}
	}
	return out, sc.Err()
}

// validate rejects baselines carrying meaningless figures: a NaN, zero, or
// negative ns_per_op makes every delta against it garbage — the gate would
// pass vacuously — so a hand-edited or corrupt baseline must fail loudly.
func (b Baseline) validate() error {
	for name, e := range b.Benchmarks {
		if e.NsPerOp <= 0 || math.IsNaN(e.NsPerOp) || math.IsInf(e.NsPerOp, 0) {
			return fmt.Errorf("baseline entry %s: invalid value %v", name, e.NsPerOp)
		}
		if e.Samples <= 0 {
			return fmt.Errorf("baseline entry %s: invalid sample count %d", name, e.Samples)
		}
	}
	return nil
}

// stripProcs removes a trailing -N GOMAXPROCS suffix: BenchmarkQuery-8 →
// BenchmarkQuery. A dash followed by anything non-numeric is part of the name
// (sub-benchmarks like BenchmarkQuery/deep-path keep their slash and text).
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Row is one benchmark metric's comparison outcome.
type Row struct {
	Name     string
	Unit     string  // "ns/op" or a custom b.ReportMetric unit
	Base     float64 // baseline median (0 = not in baseline)
	New      float64 // current median (0 = not in current run)
	DeltaPct float64 // (New-Base)/Base * 100; meaningless unless both present
	Status   string  // "ok", "REGRESSION", "improved", "new", "missing"
}

// compare pairs current medians with the baseline. Benchmarks present on only
// one side are reported (status new/missing) but never counted as regressions,
// so adding a benchmark doesn't break CI before the baseline is refreshed.
func compare(base Baseline, results map[string][]float64, thresholdPct float64) ([]Row, int) {
	names := map[string]bool{}
	for n := range base.Benchmarks {
		names[n] = true
	}
	for n := range results {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var rows []Row
	regressions := 0
	for _, n := range sorted {
		row := Row{Name: n, Unit: unitOf(n)}
		b, inBase := base.Benchmarks[n]
		samples, inNew := results[n]
		switch {
		case inBase && inNew:
			row.Base = b.NsPerOp
			row.New = median(samples)
			row.DeltaPct = (row.New - row.Base) / row.Base * 100
			switch {
			case row.DeltaPct > thresholdPct:
				row.Status = "REGRESSION"
				regressions++
			case row.DeltaPct < -thresholdPct:
				row.Status = "improved"
			default:
				row.Status = "ok"
			}
		case inNew:
			row.New = median(samples)
			row.Status = "new"
		default:
			row.Base = b.NsPerOp
			row.Status = "missing"
		}
		rows = append(rows, row)
	}
	return rows, regressions
}

// withinSpec is one -within gate: metric A's current-run median must be no
// more than LimitPct percent above metric B's. Both sides come from the same
// bench output, so the comparison is machine-independent.
type withinSpec struct {
	A, B     string
	LimitPct float64
}

// withinFlags collects repeated -within flags.
type withinFlags []withinSpec

func (f *withinFlags) String() string {
	var parts []string
	for _, s := range *f {
		parts = append(parts, fmt.Sprintf("%s:%s:%g", s.A, s.B, s.LimitPct))
	}
	return strings.Join(parts, ",")
}

func (f *withinFlags) Set(v string) error {
	// Split on the LAST two colons so metric names containing colons (none
	// today, but sub-benchmark labels are free-form) stay expressible.
	j := strings.LastIndexByte(v, ':')
	if j < 0 {
		return fmt.Errorf("-within %q: want 'A:B:PCT'", v)
	}
	pct, err := strconv.ParseFloat(v[j+1:], 64)
	if err != nil || pct < 0 {
		return fmt.Errorf("-within %q: bad percent %q", v, v[j+1:])
	}
	i := strings.LastIndexByte(v[:j], ':')
	if i <= 0 || i == j-1 {
		return fmt.Errorf("-within %q: want 'A:B:PCT'", v)
	}
	*f = append(*f, withinSpec{A: v[:i], B: v[i+1 : j], LimitPct: pct})
	return nil
}

// WithinRow is one -within gate's outcome.
type WithinRow struct {
	A, B     string
	DeltaPct float64 // (median(A)-median(B))/median(B) * 100
	LimitPct float64
	Status   string // "ok" or "REGRESSION"
}

// compareWithin evaluates one ratio gate against the current run's medians.
// A missing metric is a hard error, not a skip: a gate that silently stops
// gating (benchmark renamed, filter too narrow) is worse than a red build.
func compareWithin(spec withinSpec, results map[string][]float64) (WithinRow, error) {
	row := WithinRow{A: spec.A, B: spec.B, LimitPct: spec.LimitPct}
	a, ok := results[spec.A]
	if !ok {
		return row, fmt.Errorf("-within: metric %q not in bench output", spec.A)
	}
	b, ok := results[spec.B]
	if !ok {
		return row, fmt.Errorf("-within: metric %q not in bench output", spec.B)
	}
	row.DeltaPct = (median(a) - median(b)) / median(b) * 100
	row.Status = "ok"
	if row.DeltaPct > spec.LimitPct {
		row.Status = "REGRESSION"
	}
	return row, nil
}

func writeText(w io.Writer, rows []Row, threshold float64) {
	fmt.Fprintf(w, "%-44s %14s %14s %9s  %s\n", "benchmark", "baseline", "current", "delta", "status")
	for _, r := range rows {
		fmt.Fprintf(w, "%-44s %14s %14s %9s  %s\n",
			r.Name, fmtVal(r.Base, r.Unit), fmtVal(r.New, r.Unit), fmtDelta(r), r.Status)
	}
	fmt.Fprintf(w, "\nthreshold: ±%.0f%% on per-metric medians\n", threshold)
}

func writeMarkdown(w io.Writer, rows []Row, threshold float64) {
	fmt.Fprintln(w, "| benchmark | baseline | current | delta | status |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---|")
	for _, r := range rows {
		status := r.Status
		if status == "REGRESSION" {
			status = "⚠️ **regression**"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			r.Name, fmtVal(r.Base, r.Unit), fmtVal(r.New, r.Unit), fmtDelta(r), status)
	}
	fmt.Fprintf(w, "\nThreshold: ±%.0f%% on per-metric medians.\n", threshold)
}

// fmtVal renders ns/op values with time units; custom metrics print raw with
// their unit, since benchgate cannot know their natural scale.
func fmtVal(v float64, unit string) string {
	if v == 0 {
		return "—"
	}
	if unit != "ns/op" && unit != "" {
		return fmt.Sprintf("%.4g %s", v, unit)
	}
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.4gms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.4gµs", v/1e3)
	default:
		return fmt.Sprintf("%.4gns", v)
	}
}

func fmtDelta(r Row) string {
	if r.Base == 0 || r.New == 0 {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", r.DeltaPct)
}
