package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: vist
BenchmarkQuery-8   	       5	 250000000 ns/op
BenchmarkQuery-8   	       5	 260000000 ns/op
BenchmarkQuery-8   	       4	 300000000 ns/op
BenchmarkInsert-8  	    2000	    500000 ns/op	  1024 B/op	      12 allocs/op
BenchmarkInsert-8  	    2000	    520000 ns/op	  1024 B/op	      12 allocs/op
PASS
ok  	vist	12.345s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkQuery"]) != 3 {
		t.Fatalf("BenchmarkQuery samples = %v, want 3", got["BenchmarkQuery"])
	}
	if len(got["BenchmarkInsert"]) != 2 {
		t.Fatalf("BenchmarkInsert samples = %v, want 2", got["BenchmarkInsert"])
	}
	if m := median(got["BenchmarkQuery"]); m != 260000000 {
		t.Fatalf("median = %v, want 260000000", m)
	}
	if m := median(got["BenchmarkInsert"]); m != 510000 {
		t.Fatalf("even-count median = %v, want 510000", m)
	}
}

func TestParseBenchCustomMetrics(t *testing.T) {
	out := `BenchmarkStorageBytesPerDoc-8 	       1	 991234567 ns/op	   532.1 bytes/doc
BenchmarkStorageBytesPerDoc-8 	       1	 987654321 ns/op	   530.9 bytes/doc
`
	got, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkStorageBytesPerDoc"]) != 2 {
		t.Fatalf("ns/op samples = %v, want 2", got["BenchmarkStorageBytesPerDoc"])
	}
	key := "BenchmarkStorageBytesPerDoc [bytes/doc]"
	if len(got[key]) != 2 {
		t.Fatalf("custom metric samples = %v, want 2", got[key])
	}
	if m := median(got[key]); m != 531.5 {
		t.Fatalf("custom metric median = %v, want 531.5", m)
	}
	if u := unitOf(key); u != "bytes/doc" {
		t.Fatalf("unitOf(%q) = %q", key, u)
	}
	if u := unitOf("BenchmarkQuery"); u != "ns/op" {
		t.Fatalf("unitOf bare name = %q, want ns/op", u)
	}
	if s := fmtVal(531.5, "bytes/doc"); s != "531.5 bytes/doc" {
		t.Fatalf("fmtVal custom = %q", s)
	}

	base := Baseline{Benchmarks: map[string]Entry{
		key: {NsPerOp: 400, Samples: 2, Unit: "bytes/doc"}, // current 531.5 → +33% regression
	}}
	rows, regressions := compare(base, got, 10)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (bytes/doc growth must gate)", regressions)
	}
	for _, r := range rows {
		if r.Name == key && r.Status != "REGRESSION" {
			t.Errorf("%s status = %q, want REGRESSION", key, r.Status)
		}
	}
}

func TestParseBenchRejectsInvalidSamples(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkQuery-8   \t 100\t 0 ns/op\n",
		"BenchmarkQuery-8   \t 100\t 0.0 ns/op\n",
	} {
		if _, err := parseBench(strings.NewReader(bad)); err == nil {
			t.Errorf("parseBench accepted invalid sample: %q", bad)
		}
	}
}

func TestBaselineValidate(t *testing.T) {
	good := Baseline{Benchmarks: map[string]Entry{"BenchmarkQuery": {NsPerOp: 100, Samples: 6}}}
	if err := good.validate(); err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	}
	for name, b := range map[string]Baseline{
		"zero ns_per_op":     {Benchmarks: map[string]Entry{"B": {NsPerOp: 0, Samples: 6}}},
		"negative ns_per_op": {Benchmarks: map[string]Entry{"B": {NsPerOp: -5, Samples: 6}}},
		"NaN ns_per_op":      {Benchmarks: map[string]Entry{"B": {NsPerOp: math.NaN(), Samples: 6}}},
		"Inf ns_per_op":      {Benchmarks: map[string]Entry{"B": {NsPerOp: math.Inf(1), Samples: 6}}},
		"zero samples":       {Benchmarks: map[string]Entry{"B": {NsPerOp: 100, Samples: 0}}},
	} {
		if err := b.validate(); err == nil {
			t.Errorf("baseline with %s validated without error", name)
		}
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkQuery-8":            "BenchmarkQuery",
		"BenchmarkQuery":              "BenchmarkQuery",
		"BenchmarkQuery/deep-path":    "BenchmarkQuery/deep-path",
		"BenchmarkQuery/sub-8":        "BenchmarkQuery/sub",
		"BenchmarkConcurrentQuery-16": "BenchmarkConcurrentQuery",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkQuery":  {NsPerOp: 200000000, Samples: 6}, // current median 260ms → +30% regression
		"BenchmarkInsert": {NsPerOp: 500000, Samples: 6},    // +2% → ok
		"BenchmarkGone":   {NsPerOp: 1000, Samples: 6},      // missing from current run
	}}
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	rows, regressions := compare(base, results, 10)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1", regressions)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if s := byName["BenchmarkQuery"].Status; s != "REGRESSION" {
		t.Errorf("BenchmarkQuery status = %q, want REGRESSION", s)
	}
	if s := byName["BenchmarkInsert"].Status; s != "ok" {
		t.Errorf("BenchmarkInsert status = %q, want ok", s)
	}
	if s := byName["BenchmarkGone"].Status; s != "missing" {
		t.Errorf("BenchmarkGone status = %q, want missing", s)
	}

	var text, md strings.Builder
	writeText(&text, rows, 10)
	writeMarkdown(&md, rows, 10)
	if !strings.Contains(text.String(), "REGRESSION") {
		t.Error("text report missing REGRESSION marker")
	}
	if !strings.Contains(md.String(), "| BenchmarkQuery |") || !strings.Contains(md.String(), "regression") {
		t.Errorf("markdown report malformed:\n%s", md.String())
	}
}

func TestWithinGate(t *testing.T) {
	out := `BenchmarkShardedQuery/shards=1-8   	 100	 330000 ns/op
BenchmarkShardedQuery/shards=1-8   	 100	 310000 ns/op
BenchmarkShardedQuery/shards=1-8   	 100	 320000 ns/op
BenchmarkQuery-8                   	 100	 300000 ns/op
BenchmarkQuery-8                   	 100	 300000 ns/op
`
	results, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}

	var f withinFlags
	if err := f.Set("BenchmarkShardedQuery/shards=1:BenchmarkQuery:10"); err != nil {
		t.Fatal(err)
	}
	row, err := compareWithin(f[0], results)
	if err != nil {
		t.Fatal(err)
	}
	// medians: 320000 vs 300000 → +6.7%, inside the 10% limit.
	if row.Status != "ok" || row.DeltaPct < 6 || row.DeltaPct > 7 {
		t.Fatalf("within row = %+v, want ok at ~+6.7%%", row)
	}

	if err := f.Set("BenchmarkShardedQuery/shards=1:BenchmarkQuery:5"); err != nil {
		t.Fatal(err)
	}
	if row, err := compareWithin(f[1], results); err != nil || row.Status != "REGRESSION" {
		t.Fatalf("tight limit: row=%+v err=%v, want REGRESSION", row, err)
	}

	// A gate over a metric absent from the run must error, not silently pass.
	if err := f.Set("BenchmarkNope:BenchmarkQuery:10"); err != nil {
		t.Fatal(err)
	}
	if _, err := compareWithin(f[2], results); err == nil {
		t.Fatal("missing metric A accepted")
	}
	if err := f.Set("BenchmarkQuery:BenchmarkNope:10"); err != nil {
		t.Fatal(err)
	}
	if _, err := compareWithin(f[3], results); err == nil {
		t.Fatal("missing metric B accepted")
	}

	for _, bad := range []string{"", "A:B", "A:B:x", "A:B:-5", ":B:10", "A::10"} {
		var g withinFlags
		if err := g.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestCompareImprovedAndNew(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Entry{
		"BenchmarkQuery": {NsPerOp: 500000000, Samples: 6}, // current 260ms → improved
	}}
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	rows, regressions := compare(base, results, 10)
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0", regressions)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if s := byName["BenchmarkQuery"].Status; s != "improved" {
		t.Errorf("BenchmarkQuery status = %q, want improved", s)
	}
	if s := byName["BenchmarkInsert"].Status; s != "new" {
		t.Errorf("BenchmarkInsert status = %q, want new", s)
	}
}
