// Command benchgate compares `go test -bench` output against a committed
// baseline, flagging slowdowns beyond a threshold. It exists so CI can gate
// performance without external tooling: the repo has no dependencies, and
// benchgate keeps it that way.
//
// Usage:
//
//	go test -bench 'Insert|Query' -count 6 . > bench.txt
//	benchgate -baseline BENCH_BASELINE.json bench.txt          compare (never
//	                                                           fails the build;
//	                                                           prints a report
//	                                                           and sets an exit
//	                                                           code only with
//	                                                           -fail)
//	benchgate -baseline BENCH_BASELINE.json -update bench.txt  rewrite baseline
//
// Flags: -threshold sets the slowdown percentage that counts as a regression
// (default 10); -fail exits 1 when a regression is found (default off: the CI
// job warns but stays green, since shared runners are noisy); -markdown
// renders the report as a GitHub-flavored table for job summaries.
//
// -within 'A:B:PCT' (repeatable) gates one benchmark against another within
// the same run: the median of metric A must not exceed the median of metric B
// by more than PCT percent. Both medians come from the current bench output,
// so the gate is immune to machine drift — it measures relative overhead
// (e.g. the sharding layer at N=1 vs the bare index), not absolute speed.
// Metric names are baseline keys: bare benchmark names for ns/op, "Name
// [unit]" for custom metrics. A violated -within gate counts as a regression
// for -fail.
//
// Multiple -count samples of the same benchmark are aggregated by median,
// which shrugs off the odd slow sample. Benchmark names are compared with
// the GOMAXPROCS suffix (-8 etc.) stripped, so baselines recorded on one
// machine shape remain comparable on another.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline file")
		update       = flag.Bool("update", false, "rewrite the baseline from the bench output instead of comparing")
		threshold    = flag.Float64("threshold", 10, "slowdown percent counted as a regression")
		fail         = flag.Bool("fail", false, "exit 1 on regression (default: warn only)")
		markdown     = flag.Bool("markdown", false, "render the report as a markdown table")
		withins      withinFlags
	)
	flag.Var(&withins, "within", "same-run ratio gate 'A:B:PCT' (repeatable): median of A at most PCT% over median of B")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one bench-output file"))
	}

	results, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *update {
		b := Baseline{Generated: time.Now().UTC().Format(time.RFC3339), Benchmarks: map[string]Entry{}}
		for name, samples := range results {
			e := Entry{NsPerOp: median(samples), Samples: len(samples)}
			if u := unitOf(name); u != "ns/op" {
				e.Unit = u
			}
			b.Benchmarks[name] = e
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *baselinePath, len(b.Benchmarks))
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *baselinePath, err))
	}
	if err := base.validate(); err != nil {
		fatal(fmt.Errorf("%s: %w", *baselinePath, err))
	}

	report, regressions := compare(base, results, *threshold)
	if *markdown {
		writeMarkdown(os.Stdout, report, *threshold)
	} else {
		writeText(os.Stdout, report, *threshold)
	}
	for _, spec := range withins {
		row, err := compareWithin(spec, results)
		if err != nil {
			fatal(err)
		}
		if row.Status == "REGRESSION" {
			regressions++
		}
		fmt.Printf("\nwithin-gate: %s is %+.1f%% vs %s (limit +%.0f%%): %s\n",
			row.A, row.DeltaPct, row.B, row.LimitPct, row.Status)
	}
	if regressions > 0 && *fail {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}
